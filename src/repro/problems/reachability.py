"""k-Reachability oracles (Example 2.3, §6.4).

``KReachOracle`` answers "is there a directed path of length exactly k from
u to v?" after a space-budgeted preprocessing phase.  Strategies:

* ``"framework"`` — the paper's contribution: CQAPIndex over the full
  non-redundant/non-dominant PMTD set (Figure 3 for k = 3; the §E.8 eleven
  for k = 4).  This realizes the Figure 4a/4b envelopes.
* ``"chain"`` — the §6.3 induced PMTD set of the single chain decomposition,
  which recovers the prior state of the art ([12] / the Goldstein et al.
  baseline shape ``S · T^{2/(k-1)} ≍ N²``).
* ``"full"`` — materialize every reachable (u, v) pair (S = |answers|,
  T = O(1)).
* ``"bfs"`` — no preprocessing; meet-in-the-middle breadth-first search
  (S = 0, T = O(k · |E|)).

``answer_batch`` evaluates many (u, v) requests in one online phase — the
§6.4 observation that batching |D| requests beats answering one-by-one.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.index import CQAPIndex
from repro.data.database import Database
from repro.data.relation import Relation
from repro.decomposition.enumeration import (
    enumerate_pmtds,
    induced_pmtds,
    paper_pmtds_4reach,
)
from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.query.catalog import k_path_cqap
from repro.util.counters import Counters, global_counters

STRATEGIES = ("framework", "chain", "full", "bfs")


def graph_database(edges: Iterable[Tuple], k: int) -> Database:
    """The k-path CQAP input: one copy of the edge set per layer atom."""
    edges = set(tuple(e) for e in edges)
    db = Database()
    for i in range(1, k + 1):
        db.add(Relation(f"R{i}", (f"x{i}", f"x{i + 1}"), edges))
    return db


def chain_decomposition(k: int) -> TreeDecomposition:
    """The natural chain decomposition used by Example 6.3 (root holds A).

    Root bag {x1, x2, x_k, x_{k+1}}, then descending bags
    {x2, x3, x_{k-1}, x_k}, ... — each bag adds the next variable pair
    inward, keeping the interface with its parent.
    """
    if k == 2:
        return TreeDecomposition({0: {"x1", "x2", "x3"}}, [])
    if k == 3:
        return TreeDecomposition(
            {0: {"x1", "x3", "x4"}, 1: {"x1", "x2", "x3"}}, [(0, 1)]
        )
    if k == 4:
        return TreeDecomposition(
            {0: {"x1", "x2", "x4", "x5"}, 1: {"x2", "x3", "x4"}}, [(0, 1)]
        )
    raise ValueError("chain decompositions provided for k in {2, 3, 4}")


class KReachOracle:
    """Space/time-tradeoff oracle for exact-length-k reachability."""

    def __init__(self, edges: Iterable[Tuple], k: int,
                 space_budget: float, strategy: str = "framework",
                 measure_degrees: bool = False) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; "
                             f"choose from {STRATEGIES}")
        self.k = k
        self.strategy = strategy
        self.edges: Set[Tuple] = set(tuple(e) for e in edges)
        self.space_budget = float(space_budget)
        self.cqap = k_path_cqap(k)
        self.db = graph_database(self.edges, k)
        self._index: Optional[CQAPIndex] = None
        self._pairs: Optional[Set[Tuple]] = None
        self._out: Dict[object, Set] = {}
        self._into: Dict[object, Set] = {}
        for u, v in self.edges:
            self._out.setdefault(u, set()).add(v)
            self._into.setdefault(v, set()).add(u)
        self.stored_tuples = 0
        self._preprocess(measure_degrees)

    # ------------------------------------------------------------------
    def _pmtds(self):
        if self.strategy == "chain":
            return induced_pmtds(self.cqap, chain_decomposition(self.k), 0)
        if self.k <= 3:
            return enumerate_pmtds(self.cqap)
        if self.k == 4:
            return paper_pmtds_4reach()
        return enumerate_pmtds(self.cqap, max_bags=2)

    def _preprocess(self, measure_degrees: bool) -> None:
        if self.strategy == "full":
            self._pairs = set(self.cqap.evaluate(self.db).tuples)
            self.stored_tuples = len(self._pairs)
            global_counters.stores += self.stored_tuples
            return
        if self.strategy == "bfs":
            self.stored_tuples = 0
            return
        self._index = CQAPIndex(
            self.cqap, self.db, self.space_budget, pmtds=self._pmtds(),
            measure_degrees=measure_degrees,
        ).preprocess()
        self.stored_tuples = self._index.stored_tuples

    # ------------------------------------------------------------------
    def query(self, source, target,
              counters: Optional[Counters] = None) -> bool:
        """Is there a path of length exactly k from source to target?"""
        ctr = counters or global_counters
        if self.strategy == "full":
            ctr.probes += 1
            return (source, target) in self._pairs
        if self.strategy == "bfs":
            return self._meet_in_middle(source, target, ctr)
        return self._index.answer_boolean((source, target), counters=ctr)

    def answer_batch(self, pairs: Sequence[Tuple],
                     counters: Optional[Counters] = None) -> Set[Tuple]:
        """All pairs of ``pairs`` connected by a k-path (one online pass)."""
        ctr = counters or global_counters
        if self.strategy == "full":
            ctr.probes += len(pairs)
            return {p for p in pairs if p in self._pairs}
        if self.strategy == "bfs":
            return {p for p in pairs
                    if self._meet_in_middle(p[0], p[1], ctr)}
        out = self._index.answer_batch(pairs, counters=ctr)
        return set(out.tuples)

    # ------------------------------------------------------------------
    def _meet_in_middle(self, source, target, ctr: Counters) -> bool:
        """BFS forward k//2 hops and backward the rest, intersect fronts."""
        half = self.k // 2
        forward = {source}
        for _ in range(half):
            nxt: Set = set()
            for node in forward:
                ctr.probes += 1
                nxt |= self._out.get(node, set())
                ctr.scans += len(self._out.get(node, ()))
            forward = nxt
            if not forward:
                return False
        backward = {target}
        for _ in range(self.k - half):
            nxt = set()
            for node in backward:
                ctr.probes += 1
                nxt |= self._into.get(node, set())
                ctr.scans += len(self._into.get(node, ()))
            backward = nxt
            if not backward:
                return False
        ctr.probes += min(len(forward), len(backward))
        return bool(forward & backward)

    def brute_force(self, source, target) -> bool:
        """Reference answer by explicit layered expansion."""
        frontier = {source}
        for _ in range(self.k):
            frontier = {w for u in frontier
                        for w in self._out.get(u, ())}
            if not frontier:
                return False
        return target in frontier


class AtMostKReachOracle:
    """"Path of length at most k" by combining k exact-length oracles.

    Example 2.3: "We can also check whether there is a path of length at
    most k by combining the results of k such queries (one for each
    1, ..., k)."  Each sub-oracle shares the same strategy and budget; the
    overall space is the sum, the answering time the max (both Õ-preserved).
    """

    def __init__(self, edges: Iterable[Tuple], k: int,
                 space_budget: float, strategy: str = "framework") -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.edges = set(tuple(e) for e in edges)
        self.oracles: List[KReachOracle] = []
        for j in range(2, k + 1):
            self.oracles.append(
                KReachOracle(self.edges, j, space_budget,
                             strategy=strategy)
            )
        self.stored_tuples = sum(o.stored_tuples for o in self.oracles)

    def query(self, source, target,
              counters: Optional[Counters] = None) -> bool:
        """Is there a path of length 1..k from source to target?"""
        ctr = counters or global_counters
        ctr.probes += 1
        if (source, target) in self.edges:
            return True
        return any(oracle.query(source, target, counters=ctr)
                   for oracle in self.oracles)

    def brute_force(self, source, target) -> bool:
        """Reachability within 1..k hops (a 0-length path does not count)."""
        frontier = {source}
        reached: Set = set()
        for _ in range(self.k):
            frontier = {w for u in frontier for w in self._out_of(u)}
            reached |= frontier
        return target in reached

    def _out_of(self, node) -> Set:
        return {b for a, b in self.edges if a == node}
