"""k-Set Disjointness / Intersection structures (§1, §6.1, Example 6.2).

The classic heavy/light data structure, generalized to k sets:

* **Boolean** (Example 6.2, tradeoff ``S · T^k ≍ N^k``): sets larger than
  Δ = N/S^{1/k} are *heavy*; there are at most ``N/Δ = S^{1/k}`` of them, so
  all ``S^{1/k·k} = S`` heavy k-combinations get a precomputed yes/no bit.
  Any query containing a light set scans that set (≤ Δ elements) and probes
  the other k−1 membership hashes: ``T = O(k·Δ)``.

* **Enumeration** (§6.1, tradeoff ``S · T^{k-1} ≍ N^k``): same split at
  Δ = (N^k/S)^{1/(k-1)}, but heavy combinations store the actual
  intersection list, so both emptiness and full enumeration are O(1)+output.

Space and probe counts are *measured* (stored tuples / hash probes), which
is what the benchmarks compare against the analytic curves.
"""

from __future__ import annotations

import math
from itertools import product
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.data.relation import Relation
from repro.util.counters import Counters, global_counters


class SetFamily:
    """A family of sets over a shared universe, from a membership relation."""

    def __init__(self, membership: Relation) -> None:
        """``membership`` has schema (element, set_id) — the paper's R(y, x)."""
        if len(membership.schema) != 2:
            raise ValueError("membership relation must be binary (y, x)")
        self.sets: Dict[object, Set] = {}
        for element, set_id in membership.tuples:
            self.sets.setdefault(set_id, set()).add(element)
        self.total_elements = len(membership)

    @classmethod
    def from_dict(cls, sets: Dict[object, Iterable]) -> "SetFamily":
        rows = [(y, x) for x, members in sets.items() for y in members]
        return cls(Relation("R", ("y", "x"), rows))

    def __len__(self) -> int:
        return len(self.sets)

    def size_of(self, set_id) -> int:
        return len(self.sets.get(set_id, ()))

    def members(self, set_id) -> Set:
        return self.sets.get(set_id, set())


class KSetDisjointnessIndex:
    """Boolean k-set disjointness at a space budget (Example 6.2)."""

    def __init__(self, family: SetFamily, k: int, space_budget: float,
                 counters: Optional[Counters] = None) -> None:
        if k < 2:
            raise ValueError("k must be >= 2")
        self.family = family
        self.k = k
        self.space_budget = float(space_budget)
        n = max(1, family.total_elements)
        # Δ = N / S^{1/k}: at most S^{1/k} heavy sets
        self.threshold = max(1.0, n / max(1.0, space_budget) ** (1.0 / k))
        self.heavy: List = sorted(
            (s for s in family.sets if family.size_of(s) > self.threshold),
            key=str,
        )
        self._heavy_set = set(self.heavy)
        ctr = counters or global_counters
        self._table: Set[Tuple] = set()
        for combo in product(self.heavy, repeat=k):
            if self._intersect_scan(combo, ctr, preprocessing=True):
                self._table.add(combo)
        ctr.stores += len(self._table)
        self.stored_tuples = len(self._table)

    # ------------------------------------------------------------------
    def _intersect_scan(self, set_ids: Sequence, ctr: Counters,
                        preprocessing: bool = False) -> bool:
        """Scan the smallest set, probing the rest; O(min-size · k)."""
        groups = [self.family.members(s) for s in set_ids]
        if any(not g for g in groups):
            return False
        smallest = min(groups, key=len)
        others = [g for g in groups if g is not smallest]
        for element in smallest:
            if not preprocessing:
                ctr.scans += 1
            hit = True
            for other in others:
                if not preprocessing:
                    ctr.probes += 1
                if element not in other:
                    hit = False
                    break
            if hit:
                return True
        return False

    def query(self, set_ids: Sequence,
              counters: Optional[Counters] = None) -> bool:
        """True iff the k sets have a common element."""
        if len(set_ids) != self.k:
            raise ValueError(f"expected {self.k} set ids")
        ctr = counters or global_counters
        if all(s in self._heavy_set for s in set_ids):
            ctr.probes += 1
            return tuple(set_ids) in self._table
        return self._intersect_scan(set_ids, ctr)

    def brute_force(self, set_ids: Sequence) -> bool:
        """Reference answer (no counters, no structure)."""
        groups = [self.family.members(s) for s in set_ids]
        if not groups:
            return False
        common = set(groups[0])
        for g in groups[1:]:
            common &= g
        return bool(common)


class KSetIntersectionIndex:
    """Enumerating k-set intersection (§6.1): S · T^{k-1} ≍ N^k."""

    def __init__(self, family: SetFamily, k: int, space_budget: float,
                 counters: Optional[Counters] = None) -> None:
        if k < 2:
            raise ValueError("k must be >= 2")
        self.family = family
        self.k = k
        self.space_budget = float(space_budget)
        n = max(1, family.total_elements)
        # Δ = (N^k / S)^{1/(k-1)}
        self.threshold = max(
            1.0, (n ** k / max(1.0, space_budget)) ** (1.0 / (k - 1))
        )
        self.heavy: List = sorted(
            (s for s in family.sets if family.size_of(s) > self.threshold),
            key=str,
        )
        self._heavy_set = set(self.heavy)
        ctr = counters or global_counters
        self._table: Dict[Tuple, FrozenSet] = {}
        for combo in product(self.heavy, repeat=k):
            groups = [self.family.members(s) for s in combo]
            common = set(groups[0])
            for g in groups[1:]:
                common &= g
            if common:
                self._table[combo] = frozenset(common)
        self.stored_tuples = sum(len(v) for v in self._table.values())
        ctr.stores += self.stored_tuples

    def intersect(self, set_ids: Sequence,
                  counters: Optional[Counters] = None) -> Set:
        """The full intersection of the k sets."""
        if len(set_ids) != self.k:
            raise ValueError(f"expected {self.k} set ids")
        ctr = counters or global_counters
        if all(s in self._heavy_set for s in set_ids):
            ctr.probes += 1
            return set(self._table.get(tuple(set_ids), frozenset()))
        groups = [self.family.members(s) for s in set_ids]
        if any(not g for g in groups):
            return set()
        smallest = min(groups, key=len)
        others = [g for g in groups if g is not smallest]
        out = set()
        for element in smallest:
            ctr.scans += 1
            ctr.probes += len(others)
            if all(element in other for other in others):
                out.add(element)
        return out

    def query(self, set_ids: Sequence,
              counters: Optional[Counters] = None) -> bool:
        """Emptiness through the same structure."""
        return bool(self.intersect(set_ids, counters=counters))
