"""The square CQAP (Example 5.2 / E.5): opposite corners of a 4-cycle.

``SquareOracle`` wraps the framework with the Figure 2 PMTDs; the planner
re-derives the §E.5 strategy — split R3 on x3 and R4 on x1 at Δ = D/√S,
store the heavy×heavy ``S13`` pairs, answer light subproblems online — and
the measured tradeoff follows ``S · T² ≍ D² · Q²``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

from repro.core.index import CQAPIndex
from repro.data.database import Database
from repro.data.relation import Relation, singleton_request
from repro.decomposition.enumeration import paper_pmtds_square
from repro.query.catalog import square_cqap
from repro.util.counters import Counters, global_counters


def square_graph_database(edges: Iterable[Tuple]) -> Database:
    """One shared edge set across the four square atoms."""
    edges = set(tuple(e) for e in edges)
    db = Database()
    for i, schema in enumerate(
        [("x1", "x2"), ("x2", "x3"), ("x3", "x4"), ("x4", "x1")], start=1
    ):
        db.add(Relation(f"R{i}", schema, edges))
    return db


class SquareOracle:
    """Does a square have (u, w) on opposite corners?  Budgeted oracle."""

    def __init__(self, edges: Iterable[Tuple], space_budget: float,
                 measure_degrees: bool = False) -> None:
        self.cqap = square_cqap()
        self.db = square_graph_database(edges)
        self.index = CQAPIndex(
            self.cqap, self.db, space_budget, pmtds=paper_pmtds_square(),
            measure_degrees=measure_degrees,
        ).preprocess()
        self.stored_tuples = self.index.stored_tuples

    def query(self, u, w, counters: Optional[Counters] = None) -> bool:
        return self.index.answer_boolean((u, w), counters=counters)

    def answer_batch(self, pairs,
                     counters: Optional[Counters] = None) -> Set[Tuple]:
        return set(self.index.answer_batch(pairs, counters=counters).tuples)

    def brute_force(self, u, w) -> bool:
        request = singleton_request(self.cqap.access, (u, w))
        return not self.cqap.answer_from_scratch(self.db, request).is_empty()
