"""Rational-arithmetic helpers for recovering exact tradeoff exponents.

The LP layer produces floating-point optima; the paper states tradeoffs with
small rational exponents (e.g. ``S^{3/2} * T = Q * D^3``).  These helpers snap
floats onto nearby small-denominator fractions and fit slopes of
piecewise-linear curves.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Sequence


def log2(value: float) -> float:
    """Base-2 logarithm (the paper's convention for all logs)."""
    return math.log2(value)


def approx_fraction(value: float, max_denominator: int = 64,
                    tol: float = 1e-6) -> Fraction:
    """Snap ``value`` to the closest fraction with a small denominator.

    Raises ``ValueError`` when no fraction with denominator at most
    ``max_denominator`` is within ``tol`` of ``value`` — callers should treat
    that as "the optimum is not the clean rational we expected".
    """
    frac = Fraction(value).limit_denominator(max_denominator)
    if abs(float(frac) - value) > tol:
        raise ValueError(
            f"{value!r} is not within {tol} of a fraction with denominator "
            f"<= {max_denominator} (closest was {frac})"
        )
    return frac


def solve_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``ys`` against ``xs``.

    Used to recover tradeoff exponents from log-log sweeps.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two same-length sequences of at least 2 points")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    if den == 0:
        raise ValueError("x values are constant; slope undefined")
    return num / den
