"""Shared utilities: operation counters and rational-arithmetic helpers."""

from repro.util.counters import Counters, global_counters, reset_counters
from repro.util.rationals import approx_fraction, log2, solve_slope

__all__ = [
    "Counters",
    "global_counters",
    "reset_counters",
    "approx_fraction",
    "log2",
    "solve_slope",
]
