"""Machine-independent cost accounting.

The paper's intrinsic quantities are *space* (stored tuples) and *answering
time* (work done in the online phase).  Wall-clock time in pure Python is a
misleading proxy for either, so the engine threads every hash probe, tuple
scan, and tuple store through a :class:`Counters` instance.  Benchmarks report
these counts next to (secondary) wall-clock numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Counters:
    """Mutable bundle of operation counters.

    Attributes:
        probes: number of hash-table lookups performed.
        scans: number of tuples read by iterating a relation or index bucket.
        stores: number of tuples written into a materialized structure.
        joins_emitted: number of tuples emitted by join operators.
    """

    probes: int = 0
    scans: int = 0
    stores: int = 0
    joins_emitted: int = 0
    notes: dict = field(default_factory=dict)

    def reset(self) -> None:
        """Zero every counter (notes included)."""
        self.probes = 0
        self.scans = 0
        self.stores = 0
        self.joins_emitted = 0
        self.notes = {}

    @property
    def online_work(self) -> int:
        """Total online work: probes plus scans plus emitted join tuples."""
        return self.probes + self.scans + self.joins_emitted

    def snapshot(self) -> dict:
        """Return a plain-dict copy of the counter values."""
        return {
            "probes": self.probes,
            "scans": self.scans,
            "stores": self.stores,
            "joins_emitted": self.joins_emitted,
            "online_work": self.online_work,
        }

    def delta_since(self, snapshot: "Counters") -> "Counters":
        """The work done since ``snapshot`` was taken (``self - snapshot``).

        The monotone way to attribute per-probe work to a shared counter
        bundle: take a :meth:`copy` before the probe, diff after.  Never
        :meth:`reset` a shared bundle mid-stream — concurrent readers
        (per-shard serving counters, the observability layer) rely on the
        totals only ever growing.
        """
        return self - snapshot

    def __sub__(self, other: "Counters") -> "Counters":
        return Counters(
            probes=self.probes - other.probes,
            scans=self.scans - other.scans,
            stores=self.stores - other.stores,
            joins_emitted=self.joins_emitted - other.joins_emitted,
        )

    def copy(self) -> "Counters":
        return Counters(
            probes=self.probes,
            scans=self.scans,
            stores=self.stores,
            joins_emitted=self.joins_emitted,
            notes=dict(self.notes),
        )


#: Process-wide default counter bundle.  Operators accept an explicit
#: ``counters=`` argument; when omitted they fall back to this instance.
global_counters = Counters()


def reset_counters() -> Counters:
    """Reset and return the process-wide counter bundle."""
    global_counters.reset()
    return global_counters
