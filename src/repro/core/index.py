"""CQAPIndex — the user-facing data structure (the paper's §4 framework).

Preprocess once against a space budget, then answer any access request:

    from repro import CQAPIndex, catalog, path_database

    cqap = catalog.k_path_cqap(3)
    db = path_database(k=3, n_edges=5000, domain=500, seed=1)
    index = CQAPIndex(cqap, db, space_budget=20_000)
    index.preprocess()
    index.answer_boolean((4, 17))      # one (x1, x4) probe
    index.answer_batch([(4, 17), (8, 2)])

The pipeline is §4.2/§4.3 verbatim:

* choose a PMTD set (given, or enumerated, falling back to the two trivial
  PMTDs when enumeration is too large);
* *select* the rule set against the space budget: small PMTD sets keep
  every streamed 2-phase disjunctive rule, large ones go through the
  budgeted beam selection (``repro.tradeoff.selection``) so planning
  terminates fast and the kept rules are the estimated-cheapest sound
  subset — ``rule_selection`` picks the mode (``"auto"``/``"all"``/
  ``"budget"``);
* plan each kept rule with the 2PP planner;
* preprocessing materializes every designated S-target, unions same-schema
  targets into the PMTDs' S-views, and builds their hash indexes;
* answering runs the online phase of every plan, unions T-targets into
  T-views, runs Online Yannakakis per PMTD, and unions the ψ_i.
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.online_yannakakis import OnlineYannakakis
from repro.core.two_phase import (
    CompiledOnlineStep,
    PlanningError,
    RulePlan,
    TwoPhaseExecutor,
    TwoPhasePlanner,
)
from repro.data.columnar import relation_class
from repro.data.database import Database
from repro.data.relation import Relation
from repro.decomposition.enumeration import enumerate_pmtds
from repro.decomposition.pmtd import PMTD, trivial_pmtds
from repro.query.constraints import ConstraintSet
from repro.query.cq import CQAP
from repro.query.hypergraph import VarSet
from repro.tradeoff.cost import CatalogStatistics, CostModel
from repro.tradeoff.joint_flow import SizeBoundOracle
from repro.tradeoff.rules import TwoPhaseRule, rules_from_pmtds
from repro.tradeoff.selection import SelectionResult, keep_all_rules, select_rules
from repro.util.counters import Counters


@dataclass
class IndexStats:
    """Space/answering accounting for a preprocessed index."""

    stored_tuples: int = 0
    s_view_tuples: Dict[str, int] = field(default_factory=dict)
    preprocess_counters: Dict = field(default_factory=dict)
    last_answer_counters: Dict = field(default_factory=dict)
    plans: List[str] = field(default_factory=list)
    #: rule-selection summary (mode, chosen rules, estimated space/time)
    selection: Dict = field(default_factory=dict)
    #: catalog-statistics summary (degree-key counts, join-sample sizes,
    #: LP-bound usage)
    statistics: Dict = field(default_factory=dict)
    #: estimator accuracy measured after preprocess: estimated vs actual
    #: stored size per materialized S-target
    estimate_error: Dict = field(default_factory=dict)


class CQAPIndex:
    """A space-budgeted index answering one CQAP's access requests."""

    def __init__(
        self,
        cqap: CQAP,
        db: Database,
        space_budget: float,
        pmtds: Optional[Sequence[PMTD]] = None,
        dc: Optional[ConstraintSet] = None,
        ac: Optional[ConstraintSet] = None,
        request_size: float = 1,
        max_bags: int = 3,
        max_splits: int = 4,
        budget_slack: float = 8.0,
        measure_degrees: bool = False,
        threshold_scale: float = 1.0,
        rule_selection: str = "auto",
        auto_select_threshold: int = 8,
        beam_width: int = 3,
        max_selected_pmtds: Optional[int] = None,
        statistics: Optional[CatalogStatistics] = None,
        shards: int = 1,
        relation_backend: str = "set",
        staleness_threshold: float = 0.5,
    ) -> None:
        self.cqap = cqap
        self.db = db
        self.space_budget = float(space_budget)
        #: relation class the executor materializes and probes with; the
        #: name is validated here so a typo fails at construction, not at
        #: first probe ("set" = row-at-a-time baseline, "columnar" =
        #: batch kernels — answers are bit-identical across backends)
        relation_class(relation_backend)
        self.relation_backend = relation_backend
        if rule_selection not in ("auto", "all", "budget"):
            raise ValueError(
                f"rule_selection must be 'auto', 'all', or 'budget', "
                f"got {rule_selection!r}"
            )
        if staleness_threshold <= 0:
            raise ValueError(
                f"staleness_threshold must be positive, got "
                f"{staleness_threshold}"
            )
        # knobs retained verbatim so drift-triggered re-selection
        # (repro.updates) can redo the whole configuration pipeline
        # against freshly measured statistics
        self._dc_given = dc
        self._ac = ac
        self._request_size = request_size
        self._max_splits = max_splits
        self._measure_degrees = measure_degrees
        self._threshold_scale = threshold_scale
        self._rule_selection = rule_selection
        self._auto_select_threshold = auto_select_threshold
        self._beam_width = beam_width
        self._max_selected_pmtds = max_selected_pmtds
        #: relative cardinality drift past which a delta triggers full
        #: re-selection instead of incremental view maintenance
        self.staleness_threshold = float(staleness_threshold)
        #: worker count the selection ledger prices for — the serving fleet
        #: passes its shard count so replicated S-targets must fit every
        #: per-shard budget slice whole (see selection.shard_fraction)
        self.shards = max(1, int(shards))
        if pmtds is None:
            try:
                pmtds = enumerate_pmtds(cqap, max_bags=max_bags)
            except Exception:
                pmtds = trivial_pmtds(cqap)
            if not pmtds:
                pmtds = trivial_pmtds(cqap)
        #: full candidate pool, kept for preprocess()'s re-selection
        #: backstop and for drift-triggered re-selection
        self._pmtd_pool: List[PMTD] = list(pmtds)
        self.executor = TwoPhaseExecutor(
            cqap, budget_slack=budget_slack,
            relation_backend=relation_backend,
        )
        #: delta listeners (PreparedQuery, ShardedIndex, fleets, servers);
        #: weak so dropping a serving layer unregisters it automatically
        self._listeners: "weakref.WeakSet" = weakref.WeakSet()
        #: update-path accounting surfaced through the stats envelope's
        #: ``updates`` section
        self.update_counts: Dict[str, int] = {
            "inserts": 0, "deletes": 0, "deltas_applied": 0,
            "reselections": 0,
        }
        self._configure(statistics)
        self.plans: List[RulePlan] = []
        self._s_targets: Dict[VarSet, Relation] = {}
        self._yannakakis: List[OnlineYannakakis] = []
        self._compiled_online: List[CompiledOnlineStep] = []
        self.stats = IndexStats()
        self._ready = False

    def _configure(self, statistics: Optional[CatalogStatistics]) -> None:
        """Measure statistics, build the planner stack, select rules.

        Runs at construction and again on drift-triggered re-selection
        (with ``statistics=None`` to force a re-measure of the mutated
        database).
        """
        # statistics depend only on (cqap, db): callers sweeping budgets
        # over one database should measure once and pass them in
        if statistics is None:
            statistics = CatalogStatistics.from_database(self.cqap, self.db)
        self.statistics = statistics
        dc = self._dc_given
        if dc is None and self._measure_degrees:
            from repro.query.constraints import constraints_from_statistics

            # the catalog already measured every single- and multi-variable
            # degree key: feed exactly those to the planner's LP instead of
            # re-scanning the relations
            dc = constraints_from_statistics(statistics)
        self.pmtds: List[PMTD] = list(self._pmtd_pool)
        self.cost_model = CostModel(
            self.cqap, statistics, request_size=self._request_size,
        )
        # the planner exists before selection so budgeted selection can
        # blend the planner's own degree-constraint LP bounds into its
        # final ranking (SizeBoundOracle caches per-target solves)
        self.planner = TwoPhasePlanner(
            self.cqap, self.db, self.space_budget,
            dc=dc, ac=self._ac,
            request_size=self._request_size, max_splits=self._max_splits,
            threshold_scale=self._threshold_scale,
        )
        self._lp_oracle = SizeBoundOracle(self.planner.program)
        mode = self._rule_selection
        if mode == "auto":
            mode = ("all" if len(self.pmtds) <= self._auto_select_threshold
                    else "budget")
        #: candidate pool for preprocess()'s re-selection backstop when
        #: the planner refutes an estimated-feasible rule
        self._selection_pool: List[PMTD] = list(self.pmtds)
        if mode == "budget":
            self.selection: SelectionResult = select_rules(
                self.pmtds, self.cost_model,
                space_budget=self.space_budget,
                beam_width=self._beam_width,
                max_selected=self._max_selected_pmtds,
                lp_oracle=self._lp_oracle,
                shards=self.shards,
            )
            self.pmtds = self.selection.pmtds
        else:
            self.selection = keep_all_rules(
                self.pmtds, rules_from_pmtds(self.pmtds), self.cost_model,
                space_budget=self.space_budget,
                shards=self.shards,
            )
        self.rules: List[TwoPhaseRule] = self.selection.rules

    # ------------------------------------------------------------------
    # preprocessing phase
    # ------------------------------------------------------------------
    def preprocess(self, counters: Optional[Counters] = None,
                   verify_plans: bool = False) -> "CQAPIndex":
        """Plan every rule, materialize S-targets, build per-PMTD structures.

        Ends by compiling the T-phase into per-probe steps (after the
        executor's budget-abort pass, which may flip decisions online), so
        every subsequent :meth:`answer` re-plans nothing.

        ``verify_plans=True`` additionally runs the static plan verifier
        (:func:`repro.analysis.verify_plan.check_index`) on the finished
        index — §4.2 rule soundness, ledger re-derivation, compile-time
        index pinning — raising
        :class:`~repro.analysis.verify_plan.PlanVerificationError` on any
        violation.  The differential harness turns this on for every
        index it builds.
        """
        ctr = counters or Counters()
        try:
            self._plan_and_materialize(ctr)
        except PlanningError:
            if self.selection.mode != "budget":
                raise
            # the cost model under-estimated an S-only rule that the LP
            # (or the materializer's hard limit) refutes at this budget;
            # re-select restricted to rule sets where every rule can
            # abort to the online phase, then let a second failure
            # propagate.  The aborted attempt's scans stay in ``ctr`` and
            # the executor's preprocess_runs ticks twice: both record work
            # that genuinely happened — the probe-path contract
            # (PreparedQuery.replanned) snapshots the counters *after*
            # prepare, so the retry never reads as per-probe re-planning
            try:
                # the retry gets its own LP-solve allowance: the initial
                # selection may have spent the cap, and this is the pass
                # that just learned the estimates were wrong
                self._lp_oracle.reset_budget()
                self.selection = select_rules(
                    self._selection_pool,
                    self.cost_model,
                    space_budget=self.space_budget,
                    beam_width=self._beam_width,
                    max_selected=self._max_selected_pmtds,
                    require_online_fallback=True,
                    lp_oracle=self._lp_oracle,
                    shards=self.shards,
                )
            except ValueError as exc:
                # keep the error contract: callers (and the differential
                # harness's skip logic) see budget infeasibility as
                # PlanningError, never as a selection internals error
                raise PlanningError(
                    f"no rule set is feasible at budget "
                    f"{self.space_budget:g}: {exc}"
                ) from exc
            self.pmtds = self.selection.pmtds
            self.rules = self.selection.rules
            self._plan_and_materialize(ctr)
        self._compiled_online = self.executor.compile_online(self.plans)
        self._yannakakis = []
        self.stats = IndexStats()
        for pmtd in self.pmtds:
            s_views = self._assemble_views(pmtd.s_views, self._s_targets)
            self._yannakakis.append(OnlineYannakakis(pmtd, s_views))
        self.stats.stored_tuples = sum(
            len(rel) for rel in self._s_targets.values()
        )
        self.stats.s_view_tuples = {
            "|".join(sorted(schema)): len(rel)
            for schema, rel in self._s_targets.items()
        }
        self.stats.plans = [plan.describe() for plan in self.plans]
        self.stats.selection = self.selection.snapshot()
        self.stats.statistics = {
            **self.cost_model.stats.snapshot(),
            "lp_bounds": self._lp_oracle.snapshot(),
        }
        self.stats.estimate_error = self._measure_estimate_error()
        self.stats.preprocess_counters = ctr.snapshot()
        self._ready = True
        if verify_plans:
            # local import: analysis depends on core, never the reverse
            from repro.analysis.verify_plan import check_index

            check_index(self)
        return self

    def _measure_estimate_error(self) -> Dict:
        """Estimated vs measured S-target sizes (the estimate_error counter).

        For every materialized S-target, compares the size the cost model
        predicted (the selection's routed estimate when the target was
        chosen by selection, the model's direct estimate otherwise)
        against the tuple count preprocessing actually stored.  The median
        relative error is what the benchmark trajectory tracks.
        """
        predicted: Dict[VarSet, float] = {}
        for est in self.selection.estimates:
            if est.route == "S" and est.s_target is not None:
                predicted.setdefault(est.s_target, est.s_space)
        targets = []
        for target, relation in sorted(
                self._s_targets.items(),
                key=lambda item: tuple(sorted(item[0]))):
            estimated = predicted.get(target)
            if estimated is None:
                # the planner picked a different target than selection's
                # cheapest: price it the same way selection would have
                estimated = self.cost_model.s_space(target)
            actual = len(relation)
            targets.append({
                "target": "|".join(sorted(target)),
                "estimated": estimated,
                "actual": actual,
                "relative_error": abs(estimated - actual) / max(1, actual),
            })
        errors = sorted(t["relative_error"] for t in targets)
        median = errors[len(errors) // 2] if errors else None
        return {
            "checks": len(targets),
            "targets": targets,
            "median_relative_error": median,
            "max_relative_error": errors[-1] if errors else None,
        }

    def _plan_and_materialize(self, ctr: Counters) -> None:
        """Plan the selected rules and materialize their S-targets."""
        self.plans = [
            self.planner.plan_rule(rule, estimate=estimate)
            for rule, estimate in zip(self.rules, self.selection.estimates)
        ]
        self._s_targets = self.executor.preprocess(
            self.plans, self.space_budget, counters=ctr,
            planner=self.planner,
        )

    @staticmethod
    def _assemble_views(views: Dict, targets: Dict[VarSet, Relation],
                        ) -> Dict:
        """Match materialized targets to a PMTD's views by schema."""
        out: Dict = {}
        for node, view in views.items():
            matching = targets.get(view.variables)
            schema = tuple(sorted(view.variables))
            if matching is None:
                out[node] = Relation(view.label, schema, ())
            else:
                # type-following relabel: the view shares the target's
                # tuple set *and* backend class, so columnar targets stay
                # columnar through the Yannakakis passes
                out[node] = type(matching)._wrap(
                    view.label, matching.schema, matching.tuples)
        return out

    # ------------------------------------------------------------------
    # online phase
    # ------------------------------------------------------------------
    def _normalize_request(self, request) -> Relation:
        if isinstance(request, Relation):
            if set(request.schema) == set(self.cqap.access):
                return Relation("Q_A", self.cqap.access,
                                request.project(self.cqap.access).tuples)
            if len(request.schema) == len(self.cqap.access):
                return Relation("Q_A", self.cqap.access, request.tuples)
            raise ValueError(
                f"request schema {request.schema} incompatible with access "
                f"pattern {self.cqap.access}"
            )
        if isinstance(request, tuple):
            request = [request]
        rows = [tuple(r) if isinstance(r, (tuple, list)) else (r,)
                for r in request]
        return Relation("Q_A", self.cqap.access, rows)

    def answer(self, request, counters: Optional[Counters] = None) -> Relation:
        """Return the access CQ's output for ``request`` (tuple(s) or Relation)."""
        if not self._ready:
            raise RuntimeError("call preprocess() before answer()")
        ctr = counters or Counters()
        q_a = self._normalize_request(request)
        t_targets = self.executor.online_compiled(
            self._compiled_online, q_a, counters=ctr
        )
        out_rows: set = set()
        head = tuple(self.cqap.head)
        for oy in self._yannakakis:
            t_views = self._assemble_views(oy.pmtd.t_views, t_targets)
            psi = oy.answer(q_a, t_views, counters=ctr)
            if set(psi.schema) == set(head):
                out_rows |= psi.project(head, counters=ctr).tuples
            elif psi.schema == ():
                # Boolean ψ (empty head)
                out_rows |= psi.tuples
        self.stats.last_answer_counters = ctr.snapshot()
        return Relation(f"{self.cqap.name}_answer", head, out_rows)

    def answer_boolean(self, request,
                       counters: Optional[Counters] = None) -> bool:
        """True iff the access CQ has at least one answer for ``request``."""
        return len(self.answer(request, counters=counters)) > 0

    def answer_batch(self, requests: Iterable[tuple],
                     counters: Optional[Counters] = None) -> Relation:
        """Answer many single-tuple requests in one online pass (§2.1)."""
        return self.answer(list(requests), counters=counters)

    # ------------------------------------------------------------------
    # incremental updates (repro.updates drives these)
    # ------------------------------------------------------------------
    def register_delta_listener(self, listener) -> None:
        """Subscribe a serving layer to delta events (weakly referenced).

        ``listener`` must expose ``on_index_delta(event)`` taking a
        :class:`repro.updates.UpdateEvent`.  Registration is weak: a
        dropped server disappears from the set without an explicit
        unregister.
        """
        self._listeners.add(listener)

    def unregister_delta_listener(self, listener) -> None:
        """Unsubscribe a listener (no-op if absent)."""
        self._listeners.discard(listener)

    def notify_delta(self, event) -> None:
        """Fan one update event out to every registered listener."""
        for listener in list(self._listeners):
            listener.on_index_delta(event)

    def apply_delta(self, op: str, name: str, row: tuple,
                    counters: Optional[Counters] = None):
        """Apply one single-tuple delta through the index (and listeners).

        Thin delegate to :func:`repro.updates.apply_delta` — see there
        for the maintenance algorithm and the event contract.
        """
        from repro.updates import apply_delta

        return apply_delta(self, op, name, row, counters=counters)

    def reselect(self, counters: Optional[Counters] = None) -> None:
        """Full re-selection + re-preprocess against the mutated database.

        The drift escape hatch: once measured statistics moved past
        ``staleness_threshold``, incremental maintenance keeps answers
        correct but the *chosen rules* may no longer be the cheapest (or
        even budget-feasible) ones, so the whole configuration pipeline
        reruns against freshly measured statistics.  Answers are
        preserved (every selection is sound), so listeners only need to
        rebind structures, not flush answer caches beyond what the
        triggering delta already evicted.
        """
        self._configure(None)
        self.preprocess(counters=counters)
        self.update_counts["reselections"] += 1

    def updates_section(self) -> Dict[str, int]:
        """The stats envelope's ``updates`` payload (always present)."""
        return dict(self.update_counts)

    # ------------------------------------------------------------------
    @property
    def ready(self) -> bool:
        """True once :meth:`preprocess` has frozen the serving state."""
        return self._ready

    @property
    def compiled_online(self) -> List[CompiledOnlineStep]:
        """The frozen per-probe T-phase steps (read-only serving state).

        The sharded serving layer (:mod:`repro.serving`) executes these
        through per-shard executors; the steps themselves — and the base
        relation pieces they hold — are shared across shards.
        """
        if not self._ready:
            raise RuntimeError("call preprocess() before reading plans")
        return self._compiled_online

    @property
    def s_targets(self) -> Dict[VarSet, Relation]:
        """The materialized S-target relations, keyed by variable set."""
        if not self._ready:
            raise RuntimeError("call preprocess() before reading S-targets")
        return self._s_targets

    @property
    def stored_tuples(self) -> int:
        """Intrinsic space actually used (S-target tuples)."""
        return self.stats.stored_tuples

    @property
    def predicted_log_time(self) -> float:
        """The planner's OBJ(S) across rules (the T in the tradeoff)."""
        if not self.plans:
            raise RuntimeError("not preprocessed yet")
        return max(plan.predicted_log_time for plan in self.plans)

    def describe(self) -> str:
        """Human-readable plan dump (per rule: splits and phase decisions)."""
        header = [
            f"CQAPIndex({self.cqap.name}): budget {self.space_budget:g} "
            f"tuples, {len(self.pmtds)} PMTDs, {len(self.rules)} rules",
            self.selection.describe(),
        ]
        return "\n".join(header + [p.describe() for p in self.plans])
