"""Online Yannakakis over a PMTD (Theorem 3.7, Appendix A).

Given a non-redundant PMTD whose S-views were materialized (and indexed) in
the preprocessing phase and whose T-views were produced online, the
algorithm answers the free-connex acyclic CQ

    ψ(x_H) ← Q_A ∧ ⋀_{t∈M} S_ν(t) ∧ ⋀_{t∉M} T_ν(t)

in time ``O(max_t |T_ν(t)| + |Q_A| + |ψ|)`` — crucially with *no* dependence
on S-view sizes: S-views are only ever probed through hash indexes built at
preprocessing time.

The two passes follow Appendix A exactly:

1. **Bottom-up semijoin-reduce.**  Walking edges child-before-parent:
   SS-edges are skipped (already reduced during preprocessing); an ST-edge
   semijoins the parent T-view against the child S-view's index; a TT-edge
   semijoins parent against child, then truncates the child to its head
   variables (dropping it entirely when the parent covers them).  The root
   finally reduces ``Q_A``.
2. **Top-down join.**  Starting from the reduced ``Q_A``, each kept view is
   joined parent-to-child; free-connexity guarantees no dangling tuples, so
   the pass costs output time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.data.relation import Relation
from repro.decomposition.pmtd import PMTD, S_VIEW
from repro.decomposition.tree_decomposition import NodeId
from repro.util.counters import Counters, global_counters


class OnlineYannakakis:
    """A prepared PMTD: S-views fixed and indexed, T-views supplied per call."""

    def __init__(self, pmtd: PMTD, s_views: Dict[NodeId, Relation]) -> None:
        self.pmtd = pmtd
        expected = set(pmtd.s_views)
        if set(s_views) != expected:
            raise ValueError(
                f"S-views must be given for exactly the nodes {expected}"
            )
        self.s_views: Dict[NodeId, Relation] = {}
        for node, relation in s_views.items():
            schema = pmtd.view(node).variables
            if relation.variables != schema:
                raise ValueError(
                    f"S-view at node {node} has schema "
                    f"{set(relation.variables)}, expected {set(schema)}"
                )
            self.s_views[node] = relation
        # probe-invariant tree state, hoisted out of the per-probe passes:
        # parent/depth maps and the bottom-up/top-down node orders depend
        # only on the decomposition, never on the probe
        td, root = pmtd.td, pmtd.root
        self._parents = td.parent_map(root)
        self._depths = td.depths(root)
        all_nodes = set(pmtd.s_views) | set(pmtd.t_views)
        self._bottom_up = sorted(all_nodes,
                                 key=lambda n: -self._depths[n])
        self._top_down = sorted(all_nodes, key=lambda n: self._depths[n])
        self._preprocess()

    # ------------------------------------------------------------------
    def _preprocess(self) -> None:
        """SS-edge bottom-up semijoin pass + index warm-up (space-linear)."""
        parents = self._parents
        order = [n for n in self._bottom_up if n in self.s_views]
        for node in order:
            parent = parents[node]
            if parent is None or parent not in self.pmtd.mat_set:
                continue
            # SS-edge: reduce the parent S-view by the child (preprocessing)
            child_rel = self.s_views[node]
            self.s_views[parent] = self.s_views[parent].semijoin(child_rel)
        # warm the hash indexes used online so those builds are paid here
        for node, relation in self.s_views.items():
            parent = parents[node]
            if parent is None:
                key = tuple(v for v in relation.schema
                            if v in self.pmtd.access)
            else:
                parent_schema = self.pmtd.view(parent).variables
                key = tuple(v for v in relation.schema if v in parent_schema)
            if key:
                relation.index_on(key)

    @property
    def stored_tuples(self) -> int:
        """Space held by the S-views (the data-structure share of Õ(S))."""
        return sum(len(rel) for rel in self.s_views.values())

    # ------------------------------------------------------------------
    # per-probe execution: validate T-views, bottom-up reduce, top-down join
    # ------------------------------------------------------------------
    def _working_views(self, t_views: Optional[Dict[NodeId, Relation]],
                       ) -> Dict[NodeId, Tuple[str, Relation]]:
        """Validated node -> (kind, relation) map for one probe."""
        pmtd = self.pmtd
        t_views = dict(t_views or {})
        expected_t = set(pmtd.t_views)
        if set(t_views) != expected_t:
            raise ValueError(
                f"T-views must be given for exactly the nodes {expected_t}"
            )
        working: Dict[NodeId, Tuple[str, Relation]] = {}
        for node, relation in self.s_views.items():
            working[node] = (S_VIEW, relation)
        for node, relation in t_views.items():
            schema = pmtd.view(node).variables
            if relation.variables != schema:
                raise ValueError(
                    f"T-view at node {node} has schema "
                    f"{set(relation.variables)}, expected {set(schema)}"
                )
            working[node] = ("T", relation)
        return working

    def answer(self, request: Relation,
               t_views: Optional[Dict[NodeId, Relation]] = None,
               counters: Optional[Counters] = None) -> Relation:
        """Run both passes; returns ψ over the PMTD's head variables."""
        ctr = counters or global_counters
        pmtd, root = self.pmtd, self.pmtd.root
        head = pmtd.head

        # working copies: node -> (kind, relation); schemas shrink in pass 1
        working = self._working_views(t_views)
        removed = self._reduce_bottom_up(working, self._parents, head, ctr)

        root_kind, root_rel = working[root]
        if root_kind != S_VIEW:
            head_part = root_rel.variables & head
            root_rel = root_rel.project(sorted(head_part), counters=ctr)
            working[root] = (root_kind, root_rel)
        reduced_request = request.semijoin(root_rel, counters=ctr)

        return self._join_top_down(working, removed, reduced_request,
                                   head, ctr)

    def _reduce_bottom_up(self, working: Dict[NodeId, Tuple[str, Relation]],
                          parents: Dict, head,
                          ctr: Counters) -> set:
        """Pass 1: semijoin-reduce child-before-parent; returns dropped nodes."""
        removed: set = set()
        for node in self._bottom_up:
            parent = parents[node]
            if parent is None:
                continue
            kind, relation = working[node]
            p_kind, p_rel = working[parent]
            if kind == S_VIEW and p_kind == S_VIEW:
                continue  # SS-edge: handled at preprocessing time
            if kind == S_VIEW:
                # ST-edge: parent (T) semijoins against the child S-index
                working[parent] = (p_kind, p_rel.semijoin(relation,
                                                          counters=ctr))
                if relation.variables & head <= p_rel.variables:
                    removed.add(node)
                continue
            # TT-edge
            working[parent] = (p_kind, p_rel.semijoin(relation,
                                                      counters=ctr))
            head_part = relation.variables & head
            if head_part <= p_rel.variables:
                removed.add(node)
            else:
                truncated = relation.project(sorted(head_part),
                                             counters=ctr)
                working[node] = (kind, truncated)
        return removed

    def _join_top_down(self, working: Dict[NodeId, Tuple[str, Relation]],
                       removed: set, reduced_request: Relation,
                       head, ctr: Counters) -> Relation:
        """Pass 2: join kept views parent-to-child; costs output time."""
        result = reduced_request
        order = [n for n in self._top_down if n not in removed]
        for node in order:
            _, relation = working[node]
            result = result.join(relation, counters=ctr)
        out_schema = tuple(sorted(result.variables & head))
        # access variables are part of the head by definition
        return result.project(out_schema, name=f"psi_{id(self.pmtd)}",
                              counters=ctr)
