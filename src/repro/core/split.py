"""Heavy/light split steps and subproblem enumeration (Def. C.2, §5).

A split step partitions a guard relation on a key ``X ⊂ Y`` at a degree
threshold Δ:

* the **heavy** piece keeps the tuples whose X-value has degree > Δ — it has
  at most ``N/Δ`` distinct X-values (refined constraint ``(∅, X, N/Δ)``);
* the **light** piece has per-X degree at most Δ (refined ``(X, Y, Δ)``).

The paper applies ``O(log N)`` doubling buckets; the 2PP plans this engine
emits only ever need the single binary split at the LP-derived threshold —
exactly what the §5 walkthrough does with ``Δ = |D|/√S``.  A list of splits
spawns ``2^k`` :class:`Subproblem`\\ s, each holding its restricted relation
pieces and the refined constraint set ``DC(j)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.data.database import Database
from repro.data.relation import Relation
from repro.query.constraints import ConstraintSet
from repro.query.cq import Atom, CQAP
from repro.query.hypergraph import VarSet, varset

HEAVY = "H"
LIGHT = "L"


@dataclass(frozen=True)
class SplitStep:
    """Split ``atom``'s relation on the key ``x_vars`` at ``threshold``."""

    atom: Atom
    x_vars: Tuple[str, ...]
    threshold: float

    def __post_init__(self) -> None:
        if not set(self.x_vars) < set(self.atom.variables):
            raise ValueError(
                f"split key {self.x_vars} must be a proper subset of the "
                f"atom variables {self.atom.variables}"
            )
        if self.threshold < 1:
            raise ValueError("split thresholds must be >= 1")

    def __repr__(self) -> str:
        return (f"Split({self.atom.relation} on ({', '.join(self.x_vars)}) "
                f"@ {self.threshold:g})")

    def partition(self, relation: Relation) -> Tuple[Relation, Relation]:
        """(heavy, light) pieces of ``relation`` (schema = atom variables)."""
        index = relation.index_on(self.x_vars)
        heavy_rows: List[tuple] = []
        light_rows: List[tuple] = []
        for key, rows in index.items():
            if len(rows) > self.threshold:
                heavy_rows.extend(rows)
            else:
                light_rows.extend(rows)
        base = relation.name
        heavy = Relation(f"{base}^H", relation.schema, heavy_rows)
        light = Relation(f"{base}^L", relation.schema, light_rows)
        return heavy, light


@dataclass
class Subproblem:
    """One cell of the split partition: restricted pieces + DC(j)."""

    signature: Tuple[str, ...]           # H/L per split, in split order
    relations: Dict[str, Relation]       # atom relation name -> piece
    constraints: ConstraintSet           # refined DC(j)

    def label(self) -> str:
        return "".join(self.signature) or "(no splits)"

    def atom_relation(self, atom: Atom) -> Relation:
        """The (possibly split) relation for ``atom``, on atom variables.

        Cached per atom so the hash indexes built during one online phase
        are reused by every later access request.
        """
        cache = getattr(self, "_atom_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_atom_cache", cache)
        key = (atom.relation, atom.variables)
        if key not in cache:
            piece = self.relations[atom.relation]
            cache[key] = Relation(atom.relation, atom.variables,
                                  piece.tuples)
        return cache[key]


def apply_splits(cqap: CQAP, db: Database, splits: Sequence[SplitStep],
                 base_constraints: ConstraintSet) -> List[Subproblem]:
    """Spawn the ``2^k`` subproblems of a split sequence.

    Splits are applied in order; later splits partition the pieces produced
    by earlier splits of the same relation.  Every subproblem's constraint
    set starts from ``base_constraints`` and adds the refined cardinality /
    degree constraints of its chosen pieces (including the piece's actual
    cardinality, which is often far below the worst case).
    """
    atom_by_name = {atom.relation: atom for atom in cqap.atoms}
    subproblems: List[Subproblem] = []
    for choice in product((HEAVY, LIGHT), repeat=len(splits)):
        relations: Dict[str, Relation] = {
            atom.relation: Relation(
                atom.relation, atom.variables, db[atom.relation].tuples
            )
            for atom in cqap.atoms
        }
        constraints = base_constraints.copy()
        for side, split in zip(choice, splits):
            name = split.atom.relation
            heavy, light = split.partition(relations[name])
            piece = heavy if side == HEAVY else light
            relations[name] = Relation(name, split.atom.variables,
                                       piece.tuples)
            n_total = max(1, len(db[name]))
            if side == HEAVY:
                # few distinct X-values: N/Δ of them at most
                constraints.add_cardinality(
                    split.x_vars, max(1.0, n_total / split.threshold)
                )
            else:
                constraints.add_degree(
                    split.x_vars, split.atom.variables,
                    max(1.0, split.threshold),
                )
        # refresh cardinalities with the actual piece sizes
        for atom in cqap.atoms:
            constraints.add_cardinality(
                atom.variables, max(1, len(relations[atom.relation]))
            )
        subproblems.append(Subproblem(choice, relations, constraints))
    return subproblems


def split_steps_from_duals(
    cqap: CQAP,
    db: Database,
    duals: Dict,
    h_s: Dict[VarSet, float],
    h_t: Dict[VarSet, float],
    tolerance: float = 1e-7,
    max_splits: int = 4,
) -> List[SplitStep]:
    """Derive the split sequence from an optimal joint-flow solution.

    Every split-constraint dual γ > 0 names a coupled (X, Y) pair
    (Theorem D.5's witness); the threshold realizing the corresponding
    binding inequality is ``Δ = 2^{h_T(Y) - h_T(X)}`` for the
    heavy-X-materialized orientation and ``Δ = 2^{h_S(Y) - h_S(X)}`` for the
    light orientation — both sides of the same binary partition, so a single
    step per (atom, X) suffices.  The most-binding ``max_splits`` pairs are
    kept (each split doubles the subproblem count).
    """
    candidates: Dict[Tuple[str, Tuple[str, ...]], float] = {}
    for name, value in duals.items():
        if not isinstance(name, tuple) or len(name) != 2:
            continue
        kind, key = name
        if kind not in ("sc_s_heavy", "sc_t_heavy") or value <= tolerance:
            continue
        x_sorted, y_sorted = key
        x, y = varset(x_sorted), varset(y_sorted)
        # find an atom guarding the pair (Y within the atom schema)
        for atom in cqap.atoms:
            if y <= atom.varset and x < atom.varset:
                if kind == "sc_s_heavy":
                    delta = 2.0 ** (h_t.get(y, 0.0) - h_t.get(x, 0.0))
                else:
                    delta = 2.0 ** (h_s.get(y, 0.0) - h_s.get(x, 0.0))
                entry = (atom.relation, tuple(sorted(x)))
                current = candidates.get(entry)
                # keep the largest dual weight per (atom, X); remember Δ
                if current is None or value > current[0]:
                    candidates[entry] = (value, delta)
                break
    ranked = sorted(candidates.items(), key=lambda kv: -kv[1][0])
    atom_by_name = {atom.relation: atom for atom in cqap.atoms}
    steps: List[SplitStep] = []
    for (rel_name, x_vars), (_, delta) in ranked[:max_splits]:
        threshold = max(1.0, delta)
        steps.append(SplitStep(atom_by_name[rel_name], x_vars, threshold))
    return steps
