"""A PANDA-style proof-sequence interpreter over conditional tables.

PANDA's central insight is that each step of a Shannon-flow proof sequence
corresponds to a relational operation.  This module makes that executable
for *given* proof sequences (synthesis stays with the LP layer, see
DESIGN.md): a :class:`CondTable` materializes one ``h(Y|X)`` term — a hash
map from X-tuples to sets of Y-extensions — and the four proof rules act on
a working pool of tables:

===============  ======================================================
submodularity    re-key ``(I | I∩J)`` as ``(I∪J | J)``: each group is
                 re-indexed by the larger key; extensions shrink.  Sizes
                 never grow — the relational content is *reused*.
decomposition    split ``(Y | ∅)`` on a key X at a degree threshold:
                 the light part becomes ``(Y | X)`` with bounded groups,
                 the heavy part contributes the ``(X | ∅)`` key table.
composition      join ``(X | ∅)`` with ``(Y | X)``: every key tuple is
                 extended by its group, producing ``(Y | ∅)``.
monotonicity     project ``(Y | ∅)`` onto ``X ⊂ Y``.
===============  ======================================================

Running the §5 preprocessing sequence on actual relations therefore
*materializes S₁₃ by joining the heavy pieces*, and the online sequence
computes the output by extending the access tuple through the light pieces
— exactly the paper's narrative, now executed step by step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.data.relation import Relation
from repro.polymatroid.lattice import SubsetSpace
from repro.polymatroid.shannon import ProofSequence, ProofStep
from repro.query.hypergraph import VarSet, varset
from repro.util.counters import Counters, global_counters


class InterpretationError(RuntimeError):
    """Raised when a proof step has no matching table in the pool."""


@dataclass
class CondTable:
    """A conditional relation for the term ``h(Y | X)``.

    ``groups`` maps each X-tuple (ordered by ``sorted(x_vars)``) to the set
    of full Y-tuples (ordered by ``sorted(y_vars)``) extending it.
    """

    x_vars: Tuple[str, ...]
    y_vars: Tuple[str, ...]
    groups: Dict[Tuple, Set[Tuple]]

    def __post_init__(self) -> None:
        if not set(self.x_vars) <= set(self.y_vars):
            raise ValueError("conditional table needs X ⊆ Y")

    # ------------------------------------------------------------------
    @classmethod
    def from_relation(cls, relation: Relation,
                      x_vars: Iterable[str]) -> "CondTable":
        x_vars = tuple(sorted(x_vars))
        y_vars = tuple(sorted(relation.schema))
        ordered = relation.project(y_vars)
        groups: Dict[Tuple, Set[Tuple]] = {}
        positions = [y_vars.index(v) for v in x_vars]
        for row in ordered.tuples:
            key = tuple(row[p] for p in positions)
            groups.setdefault(key, set()).add(row)
        return cls(x_vars, y_vars, groups)

    def to_relation(self, name: str = "T") -> Relation:
        rows = set()
        for group in self.groups.values():
            rows |= group
        return Relation(name, self.y_vars, rows)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return sum(len(g) for g in self.groups.values())

    @property
    def max_degree(self) -> int:
        return max((len(g) for g in self.groups.values()), default=0)

    @property
    def key_count(self) -> int:
        return len(self.groups)

    def coordinate(self) -> Tuple[FrozenSet[str], FrozenSet[str]]:
        return (frozenset(self.x_vars), frozenset(self.y_vars))

    def extensions(self, key_tuple: Tuple, key_vars: Tuple[str, ...],
                   out_vars: Tuple[str, ...], ctr: Counters):
        """Yield Y-rows extending ``key_tuple`` over ``out_vars``."""
        binding = dict(zip(key_vars, key_tuple))
        prefix = tuple(binding[v] for v in self.x_vars)
        group = self.groups.get(prefix, ())
        for row in group:
            ctr.scans += 1
            values = dict(zip(self.y_vars, row))
            values.update(binding)
            yield tuple(values[v] for v in out_vars)

    def __repr__(self) -> str:
        x = ",".join(self.x_vars) or "∅"
        y = ",".join(self.y_vars)
        return (f"CondTable(({y} | {x}), keys={self.key_count}, "
                f"deg<={self.max_degree})")


class ProofSequenceInterpreter:
    """Executes a proof sequence over a pool of conditional tables.

    The pool starts with one :class:`CondTable` per initial δ term; each
    step consumes matching tables and produces the tables of its output
    coordinates.  At the end, :meth:`table_for` retrieves the materialized
    target(s) — the model the sequence promises.
    """

    def __init__(self, space: SubsetSpace,
                 counters: Optional[Counters] = None) -> None:
        self.space = space
        self.ctr = counters or global_counters
        self.pool: List[CondTable] = []

    # ------------------------------------------------------------------
    def add_relation(self, relation: Relation,
                     x_vars: Iterable[str] = ()) -> None:
        """Seed the pool with ``(schema | x_vars)`` built from a relation."""
        self.pool.append(CondTable.from_relation(relation, x_vars))

    def _take(self, x_mask: int, y_mask: int) -> CondTable:
        x = frozenset(self.space.members(x_mask))
        y = frozenset(self.space.members(y_mask))
        for i, table in enumerate(self.pool):
            if table.coordinate() == (x, y):
                return self.pool.pop(i)
        raise InterpretationError(
            f"no table for coordinate ({sorted(y)} | {sorted(x)}); pool: "
            f"{self.pool}"
        )

    # ------------------------------------------------------------------
    def run(self, sequence: ProofSequence) -> None:
        for step in sequence:
            self.apply(step)

    def apply(self, step: ProofStep) -> None:
        handler = {
            "submodularity": self._submodularity,
            "monotonicity": self._monotonicity,
            "composition": self._composition,
            "decomposition": self._decomposition,
        }[step.kind]
        handler(step)

    # ------------------------------------------------------------------
    def _submodularity(self, step: ProofStep) -> None:
        """(I | I∩J) -> (I∪J | J): re-key each tuple by its J-part.

        Relationally this is a *schema reinterpretation*: the table's rows
        stand for possible extensions from a J-tuple to I∪J; variables in
        J \\ I are free and will be bound when a later composition joins a
        (J | ∅) table in.  We realize it lazily: the group key grows to the
        I-part of J (the bound part); tuples are unchanged.
        """
        i_mask, j_mask = step.first, step.second
        table = self._take(i_mask & j_mask, i_mask)
        new_x = tuple(sorted(self.space.members(j_mask)))
        new_y = tuple(sorted(self.space.members(i_mask | j_mask)))
        # the variables of J \ I are not present in the stored rows; they
        # act as wildcards: key groups by the (J ∩ I) prefix and remember
        # the wildcard variables so composition can bind them.
        self.pool.append(_WildcardTable(
            x_vars=new_x, y_vars=new_y,
            base=table,
        ))

    def _monotonicity(self, step: ProofStep) -> None:
        """(Y | ∅) -> (X | ∅): projection."""
        table = self._take(0, step.second)
        relation = table.to_relation("mono")
        onto = tuple(sorted(self.space.members(step.first)))
        projected = relation.project(onto, counters=self.ctr)
        self.pool.append(CondTable.from_relation(projected, ()))

    def _composition(self, step: ProofStep) -> None:
        """(X | ∅) + (Y | X) -> (Y | ∅): extend keys by their groups."""
        x_mask, y_mask = step.first, step.second
        keys = self._take(0, x_mask)
        cond = self._take(x_mask, y_mask)
        out_vars = tuple(sorted(self.space.members(y_mask)))
        rows: Set[Tuple] = set()
        key_vars = tuple(sorted(self.space.members(x_mask)))
        key_rows: Set[Tuple] = set()
        for group in keys.groups.values():
            key_rows |= group
        for key_tuple in key_rows:
            self.ctr.probes += 1
            for row in cond.extensions(key_tuple, key_vars, out_vars,
                                       self.ctr):
                rows.add(row)
                self.ctr.joins_emitted += 1
        relation = Relation("compose", out_vars, rows)
        self.pool.append(CondTable.from_relation(relation, ()))

    def _decomposition(self, step: ProofStep) -> None:
        """(Y | ∅) -> (Y | X) + (X | ∅): heavy/light split on X.

        The threshold is the balanced choice ``|table| / |keys|``-free form:
        we split at degree ``sqrt``-balance — callers wanting a specific Δ
        should pre-split with :mod:`repro.core.split`.  Light groups stay as
        the conditional part; heavy keys go to the key table.
        """
        table = self._take(0, step.second)
        x_vars = tuple(sorted(self.space.members(step.first)))
        relation = table.to_relation("decomp")
        rekeyed = CondTable.from_relation(relation, x_vars)
        threshold = max(1.0, rekeyed.size ** 0.5)
        light: Dict[Tuple, Set[Tuple]] = {}
        heavy_keys: Set[Tuple] = set()
        for key, group in rekeyed.groups.items():
            if len(group) > threshold:
                heavy_keys.add(key)
            else:
                light[key] = group
        self.pool.append(CondTable(rekeyed.x_vars, rekeyed.y_vars, light))
        key_relation = Relation("heavy_keys", x_vars, heavy_keys)
        self.pool.append(CondTable.from_relation(key_relation, ()))

    # ------------------------------------------------------------------
    def table_for(self, variables: Iterable[str]) -> Relation:
        """Fetch the pool's unconditional table over ``variables``."""
        want = frozenset(variables)
        for table in self.pool:
            if table.coordinate() == (frozenset(), want):
                return table.to_relation("target")
        raise InterpretationError(
            f"no unconditional table over {sorted(want)} in the pool"
        )


class _WildcardTable(CondTable):
    """A conditional table whose key includes unbound wildcard variables.

    Produced by submodularity steps: ``(I | I∩J) -> (I∪J | J)`` keys tuples
    by all of J, but the stored rows only carry I's variables — the
    variables of ``J \\ I`` match anything.  Composition resolves them by
    filling the wildcard positions from the probing key.
    """

    def __init__(self, x_vars: Tuple[str, ...], y_vars: Tuple[str, ...],
                 base: CondTable) -> None:
        self.x_vars = x_vars
        self.y_vars = y_vars
        self.base = base
        self.groups = base.groups  # keyed by the bound (I∩J) prefix

    @property
    def size(self) -> int:
        return self.base.size

    def extensions(self, key_tuple: Tuple, key_vars: Tuple[str, ...],
                   out_vars: Tuple[str, ...], ctr: Counters):
        """Yield Y-rows extending ``key_tuple`` (binding wildcards)."""
        binding = dict(zip(key_vars, key_tuple))
        bound_prefix = tuple(
            binding[v] for v in self.base.x_vars
        )
        group = self.base.groups.get(bound_prefix, ())
        base_vars = self.base.y_vars
        for row in group:
            ctr.scans += 1
            values = dict(zip(base_vars, row))
            values.update(binding)
            yield tuple(values[v] for v in out_vars)
