"""Generic (worst-case-optimal style) join with on-the-fly projection.

``project_join`` evaluates ``Π_onto(R_1 ⋈ ... ⋈ R_m)`` by backtracking over
a variable order, intersecting per-relation candidate sets at every level —
the classic generic-join scheme.  Deduplicating projections are collected
directly, so memory stays proportional to the *output*, never the
intermediate join (this is what lets the preprocessing phase semijoin/
materialize S-targets without storing the full join).

A ``limit`` turns the routine into a budget-enforced materializer: the
evaluator aborts with :class:`BudgetExceeded` as soon as the projection
exceeds the given number of tuples.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.data.relation import Relation, SchemaError
from repro.util.counters import Counters, global_counters


class BudgetExceeded(RuntimeError):
    """Raised when a budgeted materialization outgrows its limit."""

    def __init__(self, limit: int) -> None:
        super().__init__(f"projection exceeded the budget of {limit} tuples")
        self.limit = limit


def choose_variable_order(relations: Sequence[Relation],
                          onto: Sequence[str]) -> List[str]:
    """A greedy variable order: smallest relation first, then connected.

    Starting from the variables of the smallest relation (typically the
    access request) keeps the root branching minimal; subsequent variables
    are chosen to maximize the number of relations already touched, which
    keeps candidate intersections tight.
    """
    all_vars: Set[str] = set()
    for rel in relations:
        all_vars |= rel.variables
    if not relations:
        return sorted(all_vars)
    smallest = min(relations, key=len)
    order: List[str] = sorted(smallest.variables)
    placed = set(order)
    while placed != all_vars:
        best_var = None
        best_score = (-1, 0)
        for var in sorted(all_vars - placed):
            touching = sum(
                1 for rel in relations
                if var in rel.variables and rel.variables & placed
            )
            size_hint = -min(
                (len(rel) for rel in relations if var in rel.variables),
                default=0,
            )
            score = (touching, size_hint)
            if score > best_score:
                best_score = score
                best_var = var
        if best_var is None:
            # unreachable while the loop guard holds (placed ⊂ all_vars
            # guarantees a candidate), but the invariant must survive -O
            raise SchemaError(
                f"variable order stalled: no candidate among "
                f"{sorted(all_vars - placed)}"
            )
        order.append(best_var)
        placed.add(best_var)
    return order


def project_join(
    relations: Sequence[Relation],
    onto: Sequence[str],
    name: str = "join",
    limit: Optional[int] = None,
    counters: Optional[Counters] = None,
    order: Optional[Sequence[str]] = None,
) -> Relation:
    """``Π_onto(⋈ relations)`` with dedup, optional budget, and counters.

    Relations must already carry query-variable schemas (use
    ``Relation(name, atom_vars, stored.tuples)`` to rebind a stored table to
    an atom's variables).  An empty ``onto`` produces the Boolean result: a
    nullary relation holding the empty tuple iff the join is nonempty.
    """
    ctr = counters or global_counters
    onto = tuple(onto)
    all_vars: Set[str] = set()
    for rel in relations:
        all_vars |= rel.variables
    missing = set(onto) - all_vars
    if missing:
        raise ValueError(f"projection variables {missing} not in any relation")
    var_order = list(order) if order is not None else choose_variable_order(
        relations, onto
    )
    if set(var_order) != all_vars:
        raise ValueError("variable order must cover exactly the join variables")

    # only descend far enough to bind every projection variable... but a
    # shorter descent could emit spurious tuples (unjoined relations), so we
    # bind everything; relations prune as soon as their last variable binds.
    out: Set[Tuple] = set()
    binding: Dict[str, object] = {}
    rel_vars = [rel.variables for rel in relations]

    def candidates(var: str) -> Optional[Set]:
        """Intersect candidate values for ``var`` across the relevant relations.

        Only the smallest bucket is scanned; the other relations are *probed*
        per candidate through their ``bound_key + (var,)`` hash indexes.  This
        keeps the per-node cost at (smallest bucket) × (relation count),
        which is what the paper's degree-constraint accounting charges.
        """
        participants = []  # (bucket_size, rel, bound_key, prefix)
        for rel, variables in zip(relations, rel_vars):
            if var not in variables:
                continue
            bound_key = tuple(v for v in rel.schema if v in binding)
            prefix = tuple(binding[v] for v in bound_key)
            ctr.probes += 1
            if bound_key:
                bucket = rel.index_on(bound_key).get(prefix, ())
                size = len(bucket)
            else:
                size = len(rel.index_on((var,)))
            participants.append((size, rel, bound_key, prefix))
        if not participants:
            return None
        participants.sort(key=lambda item: item[0])
        size, rel, bound_key, prefix = participants[0]
        pos = rel.schema.index(var)
        if bound_key:
            rows = rel.index_on(bound_key).get(prefix, ())
            ctr.scans += len(rows)
            result = {row[pos] for row in rows}
        else:
            result = {key[0] for key in rel.index_on((var,))}
            ctr.scans += len(result)
        for _, other, other_key, other_prefix in participants[1:]:
            if not result:
                break
            membership = other.index_on(other_key + (var,))
            ctr.probes += len(result)
            result = {
                value for value in result
                if other_prefix + (value,) in membership
            }
        return result

    def descend(depth: int) -> None:
        if depth == len(var_order):
            row = tuple(binding[v] for v in onto)
            if row not in out:
                out.add(row)
                ctr.joins_emitted += 1
                if limit is not None and len(out) > limit:
                    raise BudgetExceeded(limit)
            return
        var = var_order[depth]
        values = candidates(var)
        if values is None:
            # variable in no relation (cannot happen: order covers join vars)
            raise AssertionError(f"variable {var} unbound by any relation")
        for value in values:
            binding[var] = value
            descend(depth + 1)
            del binding[var]

    if all(len(rel) for rel in relations):
        descend(0)
    return Relation(name, onto, out)


def semijoin_reduce_full(relations: Sequence[Relation],
                         views: Dict[str, Relation],
                         counters: Optional[Counters] = None,
                         ) -> Dict[str, Relation]:
    """Semijoin-reduce each view with the full join (§4.2's guarantee).

    For every view, recompute ``Π_schema(⋈ relations)`` (streamed through
    :func:`project_join`, so space stays at output size) and intersect.  The
    engine's exact-projection targets make this a no-op, but it is exposed —
    and tested — because §4.2 requires the guarantee for arbitrary models.
    """
    out: Dict[str, Relation] = {}
    for key, view in views.items():
        projected = project_join(relations, view.schema,
                                 name=f"reduce_{view.name}",
                                 counters=counters)
        out[key] = Relation(view.name, view.schema,
                            view.tuples & projected.tuples)
    return out
