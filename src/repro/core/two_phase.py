"""The 2PP algorithm: LP-guided two-phase plans per disjunctive rule (§D.4).

For every 2-phase disjunctive rule the planner:

1. solves ``OBJ(S)`` (Theorem C.3).  If the budget constraint is infeasible,
   the rule's cheapest S-target provably fits in Õ(S) and is materialized
   outright (no splits);
2. otherwise reads the optimal solution's split-constraint duals — the γ
   witness coordinates of Theorem D.5 — and turns each positive one into a
   binary heavy/light :class:`SplitStep` at the LP-derived threshold;
3. for each of the spawned subproblems, compares the refined single-target
   polymatroid bounds (``DC(j)``, Theorem C.1) against the budget and
   designates either an S-target (preprocess) or a T-target (online).

Execution materializes designated S-targets as *exact projections* of the
subproblem bodies via the generic join — a simplification of PANDA's
proof-sequence interpreter documented in DESIGN.md: every published strategy
in the paper resolves each subproblem with a single target, and exact
projections are automatically within the single-target bound, so the
space/time shape is preserved (the bound-gap ablation quantifies the
difference).  A hard ``limit`` on the materializer backstops the analysis:
if an S-piece unexpectedly outgrows the budget, the subproblem falls back to
the online phase, mirroring Algorithm 1's abort path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.joins import BudgetExceeded, project_join
from repro.core.kernels import CompiledProbePlan
from repro.data.columnar import relation_class
from repro.core.split import SplitStep, Subproblem, apply_splits, split_steps_from_duals
from repro.data.database import Database
from repro.data.relation import Relation
from repro.query.constraints import ConstraintSet
from repro.query.cq import CQAP
from repro.query.hypergraph import VarSet
from repro.tradeoff.joint_flow import JointFlowProgram
from repro.tradeoff.rules import TwoPhaseRule
from repro.util.counters import Counters, global_counters

S_PHASE = "S"
T_PHASE = "T"


class PlanningError(RuntimeError):
    """Raised when a rule cannot be scheduled (e.g. S-only over budget)."""


@dataclass
class PhaseDecision:
    """One subproblem's fate: which phase, which designated target."""

    subproblem: Subproblem
    phase: str                       # S_PHASE or T_PHASE
    target: VarSet
    predicted_log_size: float

    def describe(self) -> str:
        kind = "preprocess" if self.phase == S_PHASE else "online"
        return (f"[{self.subproblem.label()}] {kind} -> "
                f"{{{','.join(sorted(self.target))}}} "
                f"(bound 2^{self.predicted_log_size:.2f})")


@dataclass
class RulePlan:
    """A fully scheduled rule: splits plus per-subproblem decisions."""

    rule: TwoPhaseRule
    splits: List[SplitStep]
    decisions: List[PhaseDecision]
    predicted_log_time: float        # OBJ(S) for this rule
    materialize_all: bool = False
    #: the cost-model estimate that selected this rule (None when the rule
    #: set was fixed by hand); carried for lifecycle counters / describe()
    estimate: Optional[object] = None

    @property
    def online_decisions(self) -> List[PhaseDecision]:
        return [d for d in self.decisions if d.phase == T_PHASE]

    @property
    def preprocess_decisions(self) -> List[PhaseDecision]:
        return [d for d in self.decisions if d.phase == S_PHASE]

    def describe(self) -> str:
        estimate = ""
        if self.estimate is not None and hasattr(self.estimate, "describe"):
            estimate = f"  {self.estimate.describe()}"
        lines = [f"rule {self.rule.label}  (OBJ = 2^"
                 f"{self.predicted_log_time:.3f}){estimate}"]
        for split in self.splits:
            lines.append(f"  {split}")
        for decision in self.decisions:
            lines.append("  " + decision.describe())
        return "\n".join(lines)


class TwoPhasePlanner:
    """Plans every rule of a CQAP at a fixed space budget."""

    def __init__(self, cqap: CQAP, db: Database, space_budget: float,
                 dc: Optional[ConstraintSet] = None,
                 ac: Optional[ConstraintSet] = None,
                 request_size: float = 1,
                 max_splits: int = 4,
                 threshold_scale: float = 1.0) -> None:
        self.cqap = cqap
        self.db = db
        self.space_budget = float(space_budget)
        self.log_budget = math.log2(max(1.0, space_budget))
        self.dc = dc if dc is not None else cqap.default_constraints(db)
        self.ac = ac if ac is not None else cqap.access_constraints(request_size)
        self.program = JointFlowProgram(cqap.variables, self.dc, self.ac)
        self.max_splits = max_splits
        # multiplies every LP-derived split threshold; 1.0 is the optimum,
        # other values exist for the threshold-sensitivity ablation
        self.threshold_scale = threshold_scale
        self._bound_cache: Dict = {}
        #: times plan_rule() ran — lets the serving engine assert that the
        #: warm probe path never re-plans
        self.plan_calls = 0

    # ------------------------------------------------------------------
    def _single_bound(self, target: VarSet, phase: str,
                      extra: Optional[ConstraintSet] = None) -> float:
        key = (
            target, phase,
            tuple(sorted(
                (tuple(sorted(c.x)), tuple(sorted(c.y)), c.bound)
                for c in (extra or ())
            )),
        )
        if key not in self._bound_cache:
            self._bound_cache[key] = self.program.log_size_bound(
                [target], phase=phase, extra=extra
            )
        return self._bound_cache[key]

    def _best_target(self, targets: Iterable[VarSet], phase: str,
                     extra: Optional[ConstraintSet] = None,
                     ) -> Tuple[Optional[VarSet], float]:
        best, best_bound = None, math.inf
        for target in sorted(targets, key=lambda t: tuple(sorted(t))):
            bound = self._single_bound(target, phase, extra)
            if bound < best_bound:
                best, best_bound = target, bound
        return best, best_bound

    def best_online_target(self, targets: Iterable[VarSet],
                           extra: Optional[ConstraintSet] = None,
                           ) -> Tuple[Optional[VarSet], float]:
        """The cheapest T-target by LP bound, with its predicted log size.

        Public so the executor's budget-abort fallback re-prices the
        replacement online target with the same polymatroid bound the
        planner used for the original schedule, instead of guessing.
        """
        return self._best_target(targets, T_PHASE, extra=extra)

    # ------------------------------------------------------------------
    def plan_rule(self, rule: TwoPhaseRule,
                  estimate: Optional[object] = None) -> RulePlan:
        """Schedule one rule at the planner's budget.

        ``estimate`` is the cost-model :class:`~repro.tradeoff.cost.
        RuleEstimate` that selected the rule (if any); the planner plans
        from the LP either way and carries the estimate on the plan so
        serving stats can compare predicted vs planned.
        """
        self.plan_calls += 1
        obj = self.program.obj_for_budget(rule, self.log_budget)
        if obj.fits_in_budget and rule.s_targets:
            target, bound = self._best_target(rule.s_targets, S_PHASE)
            if not rule.t_targets and bound > self.log_budget + 1e-6:
                raise PlanningError(
                    f"rule {rule.label} has only S-targets with bound "
                    f"2^{bound:.2f} exceeding the budget "
                    f"2^{self.log_budget:.2f}"
                )
            whole = apply_splits(self.cqap, self.db, [], self.dc)[0]
            decision = PhaseDecision(whole, S_PHASE, target, bound)
            return RulePlan(rule, [], [decision], 0.0, materialize_all=True,
                            estimate=estimate)
        if not rule.t_targets:
            raise PlanningError(
                f"rule {rule.label} has only S-targets but its bound exceeds "
                f"the budget 2^{self.log_budget:.2f}"
            )
        splits = split_steps_from_duals(
            self.cqap, self.db, obj.duals, obj.h_s, obj.h_t,
            max_splits=self.max_splits,
        )
        if self.threshold_scale != 1.0:
            splits = [
                SplitStep(s.atom, s.x_vars,
                          max(1.0, s.threshold * self.threshold_scale))
                for s in splits
            ]
        subproblems = apply_splits(self.cqap, self.db, splits, self.dc)
        decisions: List[PhaseDecision] = []
        for subproblem in subproblems:
            s_target, s_bound = (None, math.inf)
            if rule.s_targets:
                s_target, s_bound = self._best_target(
                    rule.s_targets, S_PHASE, extra=subproblem.constraints
                )
            if s_target is not None and s_bound <= self.log_budget + 1e-6:
                decisions.append(
                    PhaseDecision(subproblem, S_PHASE, s_target, s_bound)
                )
            else:
                t_target, t_bound = self._best_target(
                    rule.t_targets, T_PHASE, extra=subproblem.constraints
                )
                decisions.append(
                    PhaseDecision(subproblem, T_PHASE, t_target, t_bound)
                )
        return RulePlan(rule, splits, decisions, obj.log_time,
                        estimate=estimate)


@dataclass
class CompiledOnlineStep:
    """One T-phase unit of work, frozen after preprocessing.

    Holds the subproblem's (possibly split) relation pieces so the per-probe
    path never re-derives them — ``atom_relation`` selections, schema
    re-orderings, and the hash indexes those relations build lazily are all
    shared across every probe served from the same prepared plan.
    """

    decision: PhaseDecision
    relations: List[Relation]
    schema: Tuple[str, ...]
    name: str
    #: the probe-invariant generic-join compilation of this step (variable
    #: order + per-depth participant specs); executed once per probe with
    #: only the request relation varying
    plan: Optional[CompiledProbePlan] = None


class TwoPhaseExecutor:
    """Runs the two phases of a set of rule plans.

    Lifecycle counters (``preprocess_runs`` / ``compile_runs`` /
    ``online_runs``) let callers verify the plan-once/probe-many contract:
    a prepared instance preprocesses and compiles exactly once, no matter
    how many online phases it serves afterwards.
    """

    def __init__(self, cqap: CQAP, budget_slack: float = 8.0,
                 relation_backend: str = "set") -> None:
        self.cqap = cqap
        self.budget_slack = budget_slack
        #: relation class every phase builds its outputs with ("set" keeps
        #: the row-at-a-time baseline; "columnar" runs the batch kernels)
        self.relation_backend = relation_backend
        self.rel_cls = relation_class(relation_backend)
        self.preprocess_runs = 0
        self.compile_runs = 0
        self.online_runs = 0
        #: S-decisions flipped to the online phase by the budget-abort
        #: fallback (Algorithm 1's abort path) — lets tests and stats
        #: observe that the abort actually fired
        self.budget_aborts = 0

    # ------------------------------------------------------------------
    def preprocess(self, plans: Sequence[RulePlan], space_budget: float,
                   counters: Optional[Counters] = None,
                   planner: Optional[TwoPhasePlanner] = None,
                   ) -> Dict[VarSet, Relation]:
        """Materialize every designated S-target; returns schema -> union.

        A subproblem whose exact projection outgrows ``budget_slack × S``
        falls back to the online phase (Algorithm 1's abort), mutating the
        plan in place.  When ``planner`` is given, the replacement
        T-target is re-priced with the planner's polymatroid bound
        (cheapest online target under the subproblem's split constraints)
        and the decision records that finite predicted size; without a
        planner the fallback degrades to the lexicographically-first
        T-target with an ``inf`` prediction.
        """
        ctr = counters or global_counters
        self.preprocess_runs += 1
        limit = int(self.budget_slack * max(1.0, space_budget)) + 1
        targets: Dict[VarSet, Relation] = {}
        for plan in plans:
            for decision in list(plan.decisions):
                if decision.phase != S_PHASE:
                    continue
                relations = [
                    decision.subproblem.atom_relation(atom)
                    for atom in self.cqap.atoms
                ]
                schema = tuple(sorted(decision.target))
                try:
                    piece = project_join(
                        relations, schema,
                        name=f"S_{''.join(schema)}",
                        limit=limit, counters=ctr,
                    )
                except BudgetExceeded:
                    if not plan.rule.t_targets:
                        raise PlanningError(
                            f"rule {plan.rule.label}: S-target outgrew the "
                            "budget and the rule has no T-target to fall "
                            "back to"
                        )
                    self.budget_aborts += 1
                    decision.phase = T_PHASE
                    target, bound = None, math.inf
                    if planner is not None:
                        target, bound = planner.best_online_target(
                            plan.rule.t_targets,
                            extra=decision.subproblem.constraints,
                        )
                    if target is None:
                        target = min(
                            plan.rule.t_targets,
                            key=lambda t: tuple(sorted(t)),
                        )
                    decision.target = target
                    decision.predicted_log_size = bound
                    continue
                key = decision.target
                if key in targets:
                    targets[key] = targets[key].union(piece,
                                                      name=piece.name)
                else:
                    targets[key] = piece
        for key, rel in targets.items():
            ctr.stores += len(rel)
        if self.rel_cls is not Relation:
            targets = {
                key: self.rel_cls._wrap(rel.name, rel.schema, rel.tuples)
                for key, rel in targets.items()
            }
        return targets

    # ------------------------------------------------------------------
    def compile_online(self, plans: Sequence[RulePlan],
                       ) -> List[CompiledOnlineStep]:
        """Freeze the T-phase of ``plans`` into per-probe execution steps.

        Must run *after* :meth:`preprocess`, whose budget-abort path may flip
        S-decisions to the online phase; the compiled steps then reflect the
        post-abort schedule and stay valid for every subsequent probe.
        """
        self.compile_runs += 1
        steps: List[CompiledOnlineStep] = []
        rel_cls = self.rel_cls
        for plan in plans:
            for decision in plan.online_decisions:
                relations = [
                    decision.subproblem.atom_relation(atom)
                    for atom in self.cqap.atoms
                ]
                if rel_cls is not Relation:
                    relations = [
                        rel_cls._wrap(r.name, r.schema, r.tuples)
                        for r in relations
                    ]
                schema = tuple(sorted(decision.target))
                steps.append(CompiledOnlineStep(
                    decision, relations, schema, f"T_{''.join(schema)}",
                    plan=CompiledProbePlan(relations, schema,
                                           self.cqap.access,
                                           rel_cls=rel_cls),
                ))
        return steps

    def online_compiled(self, steps: Sequence[CompiledOnlineStep],
                        request: Relation,
                        counters: Optional[Counters] = None,
                        ) -> Dict[VarSet, Relation]:
        """Run the compiled T-phase against one access request relation."""
        ctr = counters or global_counters
        self.online_runs += 1
        targets: Dict[VarSet, Relation] = {}
        access = self.cqap.access
        # the request tuples are never mutated here, so the rebinding to
        # the access schema shares the tuple set instead of copying it
        request_bound = self.rel_cls._wrap("Q_A", access, request.tuples) \
            if access else None
        for step in steps:
            if step.plan is not None:
                piece = step.plan.execute(request_bound, ctr, step.name)
            else:
                # uncompiled fallback (steps built by hand in tests)
                relations = step.relations
                if access:
                    relations = [request_bound] + relations
                piece = project_join(
                    relations, step.schema, name=step.name, counters=ctr,
                )
            key = step.decision.target
            if key in targets:
                targets[key] = targets[key].union(piece, name=piece.name)
            else:
                targets[key] = piece
        return targets

    def online(self, plans: Sequence[RulePlan], request: Relation,
               counters: Optional[Counters] = None,
               ) -> Dict[VarSet, Relation]:
        """Compute every designated T-target against ``request``.

        One-shot convenience: compiles and immediately executes.  Callers
        serving many probes should compile once and use
        :meth:`online_compiled` per request.
        """
        return self.online_compiled(self.compile_online(plans), request,
                                    counters=counters)
