"""Compiled per-step probe kernels for the warm (uncached) online phase.

The profile of the warm probe loop is unambiguous: ~78% of per-probe time
goes to :func:`repro.core.joins.project_join`, and a quarter of the total
is :func:`~repro.core.joins.choose_variable_order` — recomputed *per
probe per step* even though the participating relations (S-views bound to
a step's schema) never change between probes.  Only the tiny ``Q_A``
request relation differs.

:class:`CompiledProbePlan` hoists everything probe-invariant out of the
loop at compile time:

* the greedy variable order (chosen once, against a 1-row stand-in for
  the request — the request is the smallest relation by construction, so
  the stand-in picks the same order every real probe would);
* per-depth *participant specs*: for each variable, which relation slots
  constrain it, the bound-key columns of each, the stack depths those
  columns were bound at, and the membership-index key — all precomputed
  tuples, no per-node schema scans or genexpr closures;
* bulk counter accounting: probes/scans accumulate in local ints and hit
  the :class:`~repro.util.counters.Counters` object once per probe.

The node-level algorithm is exactly ``project_join``'s generic join —
scan the smallest candidate bucket, probe the other participants through
their ``bound_key + (var,)`` hash indexes — so answers are identical by
construction; only the interpretation overhead is gone.

Pickling: a plan ships to process-fleet workers inside its compiled step.
Like :class:`~repro.data.relation.Relation`, it serializes payload only —
the spec tuples and relation references (which the pickler dedupes
against the step's own relations) — never runtime index caches.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence, Tuple

from repro.core.joins import choose_variable_order
from repro.data.relation import Relation
from repro.util.counters import Counters

#: sentinel schema stand-in value for the compile-time dummy request row
_DUMMY = object()


class ParticipantSpec(NamedTuple):
    """Read-only view of one per-depth participant spec.

    The compiled plan stores participants as raw 8-slot lists for speed;
    this is the structured accessor introspection tools (the static plan
    verifier, tests) use instead of indexing the lists by magic number.
    """

    depth: int
    var: str
    slot: int
    bound_key: Tuple[str, ...]
    pinnable: bool
    shares_level: bool
    index: Optional[dict]
    membership_index: Optional[dict]


class CompiledProbePlan:
    """A probe-invariant compilation of one online step's project-join.

    Built once per :class:`~repro.core.two_phase.CompiledOnlineStep` at
    preprocess time; executed once per probe with only the request
    relation varying.  ``relations`` are the step's static relations
    (S-views rebound to query variables); when ``access`` is non-empty,
    slot 0 at execution time is the per-probe request relation.

    The static relations are frozen by the engine's read-only serving
    discipline — their cached hash indexes stay valid across probes,
    which is what makes per-probe cost independent of S-view sizes.
    """

    __slots__ = ("relations", "onto", "access", "order", "levels",
                 "onto_depths", "rel_cls")

    def __init__(self, relations: Sequence[Relation], onto: Sequence[str],
                 access: Sequence[str],
                 rel_cls: type = Relation) -> None:
        self.relations: List[Relation] = list(relations)
        self.onto: Tuple[str, ...] = tuple(onto)
        self.access: Tuple[str, ...] = tuple(access)
        self.rel_cls = rel_cls
        self._compile()

    def _compile(self) -> None:
        if self.access:
            dummy = Relation._wrap("Q_A", self.access,
                                   {(_DUMMY,) * len(self.access)})
            slot_rels: List[Relation] = [dummy] + self.relations
        else:
            slot_rels = list(self.relations)
        self.order = tuple(choose_variable_order(slot_rels, self.onto))
        depth_of = {v: i for i, v in enumerate(self.order)}
        self.onto_depths = tuple(depth_of[v] for v in self.onto)
        levels = []
        for depth, var in enumerate(self.order):
            parts = []
            for slot, rel in enumerate(slot_rels):
                if var not in rel.variables:
                    continue
                bound_key = tuple(v for v in rel.schema
                                  if depth_of[v] < depth)
                # mutable spec: slots 6/7 cache the static relations' hash
                # indexes after first use (the per-probe request at slot 0
                # is never pinned — flag 5 marks pinnable participants)
                parts.append([
                    slot,
                    bound_key,
                    tuple(depth_of[v] for v in bound_key),
                    rel.schema.index(var),
                    bound_key + (var,),
                    not (self.access and slot == 0),
                    None,
                    None,
                ])
            levels.append(tuple(parts))
        self.levels = tuple(levels)
        # warm and pin the static participants' hash indexes now, at
        # compile (= preprocessing) time: the paper's online-phase bound
        # assumes S-views are only ever *probed* through indexes built
        # during preprocessing, so first-probe latency must not pay them
        for depth, parts in enumerate(self.levels):
            var = self.order[depth]
            for part in parts:
                if not part[5]:
                    continue
                rel = slot_rels[part[0]]
                part[6] = rel.index_on(part[1] if part[1] else (var,))
                if len(parts) > 1:
                    part[7] = rel.index_on(part[4])

    def iter_participants(self):
        """Yield every participant spec as a :class:`ParticipantSpec`.

        The contract the verifier checks rides on ``pinnable``: a static
        (non-request) participant must have had its hash index built at
        compile time (``index`` non-None, plus ``membership_index`` when
        it shares its level), while the per-probe request slot must never
        pin one — its relation changes every probe.
        """
        for depth, parts in enumerate(self.levels):
            var = self.order[depth]
            shares = len(parts) > 1
            for part in parts:
                yield ParticipantSpec(
                    depth=depth,
                    var=var,
                    slot=part[0],
                    bound_key=part[1],
                    pinnable=part[5],
                    shares_level=shares,
                    index=part[6],
                    membership_index=part[7],
                )

    # ------------------------------------------------------------------
    # pickling: spec + relation references, no runtime caches
    # ------------------------------------------------------------------
    def __getstate__(self):
        return (self.relations, self.onto, self.access, self.rel_cls)

    def __setstate__(self, state) -> None:
        self.relations, self.onto, self.access, self.rel_cls = state
        # recompiling is cheap and keeps the pickle payload minimal
        self._compile()

    def execute(self, request: Optional[Relation], counters: Counters,
                name: str) -> Relation:
        """Run the compiled generic join for one probe.

        ``request`` fills slot 0 when the plan was compiled with a
        non-empty access schema (it must carry exactly that schema);
        otherwise it is ignored.  Returns ``Π_onto`` of the join as a
        ``rel_cls`` relation; counter totals match what the interpreted
        :func:`~repro.core.joins.project_join` would have charged for
        the same candidate exploration.
        """
        if self.access:
            rels: List[Relation] = [request]  # type: ignore[list-item]
            rels += self.relations
        else:
            rels = self.relations
        out: set = set()
        for rel in rels:
            if not rel.tuples:
                return self.rel_cls._wrap(name, self.onto, out)
        levels = self.levels
        n_levels = len(levels)
        onto_depths = self.onto_depths
        stack: List[object] = [None] * n_levels
        probes = 0
        scans = 0

        def descend(depth: int) -> None:
            nonlocal probes, scans
            if depth == n_levels:
                out.add(tuple([stack[i] for i in onto_depths]))
                return
            parts = levels[depth]
            var = self.order[depth]
            probes += len(parts)
            if len(parts) == 1:
                # single participant: no ranking, no membership probes
                part = parts[0]
                if part[1]:
                    idx = part[6]
                    if idx is None:
                        idx = rels[part[0]].index_on(part[1])
                        if part[5]:
                            part[6] = idx
                    rows = idx.get(tuple([stack[j] for j in part[2]]), ())
                    scans += len(rows)
                    var_pos = part[3]
                    values = {row[var_pos] for row in rows}
                else:
                    idx = part[6]
                    if idx is None:
                        idx = rels[part[0]].index_on((var,))
                        if part[5]:
                            part[6] = idx
                    values = {key[0] for key in idx}
                    scans += len(values)
            else:
                # rank participants by candidate-bucket size, exactly as
                # the interpreted path does (stable, so counters match)
                ranked = []
                for i, part in enumerate(parts):
                    if part[1]:
                        idx = part[6]
                        if idx is None:
                            idx = rels[part[0]].index_on(part[1])
                            if part[5]:
                                part[6] = idx
                        rows = idx.get(
                            tuple([stack[j] for j in part[2]]), ())
                        ranked.append((len(rows), i, part, rows, None))
                    else:
                        idx = part[6]
                        if idx is None:
                            idx = rels[part[0]].index_on((var,))
                            if part[5]:
                                part[6] = idx
                        ranked.append((len(idx), i, part, None, idx))
                ranked.sort(key=lambda item: (item[0], item[1]))
                size0, _, best, best_rows, best_idx = ranked[0]
                if best_rows is not None:
                    scans += size0
                    var_pos = best[3]
                    values = {row[var_pos] for row in best_rows}
                else:
                    values = {key[0] for key in best_idx}
                    scans += len(values)
                for _, _, part, _, _ in ranked[1:]:
                    if not values:
                        break
                    membership = part[7]
                    if membership is None:
                        membership = rels[part[0]].index_on(part[4])
                        if part[5]:
                            part[7] = membership
                    probes += len(values)
                    prefix = tuple([stack[j] for j in part[2]])
                    values = {v for v in values
                              if prefix + (v,) in membership}
            for value in values:
                stack[depth] = value
                descend(depth + 1)

        descend(0)
        counters.probes += probes
        counters.scans += scans
        counters.joins_emitted += len(out)
        return self.rel_cls._wrap(name, self.onto, out)
