"""Executable engine: generic joins, splits, Online Yannakakis, 2PP, index."""

from repro.core.index import CQAPIndex, IndexStats
from repro.core.joins import BudgetExceeded, choose_variable_order, project_join, semijoin_reduce_full
from repro.core.online_yannakakis import OnlineYannakakis
from repro.core.panda import CondTable, InterpretationError, ProofSequenceInterpreter
from repro.core.split import HEAVY, LIGHT, SplitStep, Subproblem, apply_splits, split_steps_from_duals
from repro.core.two_phase import (
    CompiledOnlineStep,
    PhaseDecision,
    PlanningError,
    RulePlan,
    TwoPhaseExecutor,
    TwoPhasePlanner,
)

__all__ = [
    "BudgetExceeded",
    "CQAPIndex",
    "CompiledOnlineStep",
    "CondTable",
    "HEAVY",
    "InterpretationError",
    "ProofSequenceInterpreter",
    "IndexStats",
    "LIGHT",
    "OnlineYannakakis",
    "PhaseDecision",
    "PlanningError",
    "RulePlan",
    "SplitStep",
    "Subproblem",
    "TwoPhaseExecutor",
    "TwoPhasePlanner",
    "apply_splits",
    "choose_variable_order",
    "project_join",
    "semijoin_reduce_full",
    "split_steps_from_duals",
]
