"""Conjunctive queries and CQAPs (§2, Definitions 2.1).

An :class:`Atom` pairs a relation name with an ordered variable schema.  A
:class:`ConjunctiveQuery` has a head (the free variables) and a body of
atoms.  A :class:`CQAP` adds an *access pattern* ``A ⊆ head``: at answering
time the user supplies a relation ``Q_A(x_A)`` and the system returns the
result of the access CQ ``φ̂(x_H) ← Q_A(x_A) ∧ body``.

Evaluation here is by textbook backtracking join — it is the correctness
oracle the whole test suite compares everything else against, not the fast
path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.data.database import Database
from repro.data.relation import Relation
from repro.query.constraints import ConstraintSet
from repro.query.hypergraph import Hypergraph, VarSet, varset


@dataclass(frozen=True)
class Atom:
    """A relational atom ``R(x_1, ..., x_m)``."""

    relation: str
    variables: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.variables)) != len(self.variables):
            raise ValueError(
                f"repeated variables in atom {self.relation}{self.variables} "
                "are not supported; rename apart first"
            )

    @property
    def varset(self) -> VarSet:
        return varset(self.variables)

    def __repr__(self) -> str:
        return f"{self.relation}({', '.join(self.variables)})"


def normalize_access_binding(access: Sequence[str], binding) -> Tuple:
    """One access-pattern binding as a tuple of matching arity.

    Scalars are wrapped; lists become tuples; arity mismatches raise
    ``ValueError``.  Shared by the serving engine and the brute-force
    oracle so the two sides can never drift on binding plumbing.
    """
    if not isinstance(binding, (tuple, list)):
        binding = (binding,)
    binding = tuple(binding)
    if len(binding) != len(access):
        raise ValueError(
            f"binding {binding} has arity {len(binding)}; access "
            f"pattern {tuple(access)} expects {len(access)}"
        )
    return binding


def _atom_relation(db: Database, atom: Atom) -> Relation:
    """The stored relation re-schematized to the atom's query variables."""
    base = db[atom.relation]
    if len(base.schema) != len(atom.variables):
        raise ValueError(
            f"atom {atom} arity {len(atom.variables)} does not match stored "
            f"schema {base.schema}"
        )
    return Relation(atom.relation, atom.variables, base.tuples)


class ConjunctiveQuery:
    """``φ(x_H) ← ⋀_F R_F(x_F)`` with head variables ``H``."""

    def __init__(self, head: Sequence[str], atoms: Iterable[Atom],
                 name: str = "phi") -> None:
        self.name = name
        self.head: Tuple[str, ...] = tuple(head)
        self.atoms: Tuple[Atom, ...] = tuple(atoms)
        if not self.atoms:
            raise ValueError("a conjunctive query needs at least one atom")
        body_vars = set()
        for atom in self.atoms:
            body_vars |= set(atom.variables)
        missing = set(self.head) - body_vars
        if missing:
            raise ValueError(f"head variables {missing} not in any atom")
        self.variables: VarSet = varset(body_vars)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        body = " ∧ ".join(map(repr, self.atoms))
        return f"{self.name}({', '.join(self.head)}) ← {body}"

    @property
    def head_set(self) -> VarSet:
        return varset(self.head)

    @property
    def is_full(self) -> bool:
        return self.head_set == self.variables

    @property
    def is_boolean(self) -> bool:
        return not self.head

    def hypergraph(self) -> Hypergraph:
        """The query hypergraph (one edge per atom)."""
        return Hypergraph(self.variables, [a.varset for a in self.atoms])

    # ------------------------------------------------------------------
    # reference evaluation
    # ------------------------------------------------------------------
    def evaluate(self, db: Database, name: Optional[str] = None) -> Relation:
        """Evaluate by left-deep hash joins, then project onto the head.

        The atom order is chosen greedily to maximize shared variables with
        the prefix, which keeps intermediate results reasonable on the small
        test inputs.  For Boolean queries the result has the empty schema and
        is nonempty iff the query is true.
        """
        remaining = list(self.atoms)
        remaining.sort(key=lambda a: -len(db[a.relation].variables))
        ordered: List[Atom] = [remaining.pop(0)]
        bound = set(ordered[0].variables)
        while remaining:
            best_i = max(
                range(len(remaining)),
                key=lambda i: len(set(remaining[i].variables) & bound),
            )
            atom = remaining.pop(best_i)
            ordered.append(atom)
            bound |= set(atom.variables)

        current = _atom_relation(db, ordered[0])
        for atom in ordered[1:]:
            current = current.join(_atom_relation(db, atom))
        out_schema = self.head if self.head else ()
        if out_schema:
            result = current.project(out_schema, name=name or self.name)
        else:
            rows = [()] if len(current) else []
            result = Relation(name or self.name, (), rows)
        return result

    def evaluate_boolean(self, db: Database) -> bool:
        """True iff the (Boolean or projected) query has at least one answer."""
        return len(self.evaluate(db)) > 0


class CQAP(ConjunctiveQuery):
    """A CQ with an access pattern: ``φ(x_H | x_A) ← ⋀ R_F(x_F)``.

    Per the paper we require ``A ⊆ H`` (queries with ``H ⊉ A`` are normalized
    by extending the head with A and projecting afterwards, §2.2).
    """

    def __init__(self, head: Sequence[str], access: Sequence[str],
                 atoms: Iterable[Atom], name: str = "phi") -> None:
        access = tuple(access)
        head = tuple(head)
        if not set(access) <= set(head):
            raise ValueError(
                f"access pattern {access} must be contained in head {head}; "
                "normalize the query first (§2.2)"
            )
        super().__init__(head, atoms, name=name)
        self.access: Tuple[str, ...] = access
        if not self.access_set <= self.variables:
            raise ValueError("access variables must appear in the body")

    @property
    def access_set(self) -> VarSet:
        return varset(self.access)

    def __repr__(self) -> str:
        body = " ∧ ".join(map(repr, self.atoms))
        head = ", ".join(self.head)
        acc = ", ".join(self.access)
        return f"{self.name}({head} | {acc}) ← {body}"

    def access_hypergraph(self) -> Hypergraph:
        """Hypergraph of the access CQ (body plus the Q_A edge)."""
        return self.hypergraph().with_edge(self.access_set)

    def access_cq(self, request_name: str = "Q_A") -> ConjunctiveQuery:
        """The access CQ ``φ̂(x_H) ← Q_A(x_A) ∧ body``."""
        atoms = [Atom(request_name, self.access)] + list(self.atoms)
        return ConjunctiveQuery(self.head, atoms, name=f"{self.name}_hat")

    def answer_from_scratch(self, db: Database, request: Relation,
                            name: Optional[str] = None) -> Relation:
        """Reference answer: evaluate the access CQ with Q_A materialized."""
        extended = Database(list(db))
        if set(request.schema) == set(self.access):
            rows = request.project(self.access).tuples
        elif len(request.schema) == len(self.access):
            rows = request.tuples  # positional schema (e.g. generic "a", "b")
        else:
            raise ValueError(
                f"access request schema {request.schema} incompatible with "
                f"access pattern {self.access}"
            )
        extended.add(Relation("__QA__", self.access, rows))
        cq = ConjunctiveQuery(
            self.head,
            [Atom("__QA__", self.access)] + list(self.atoms),
            name=name or f"{self.name}_hat",
        )
        return cq.evaluate(extended)

    def full_materialization(self, db: Database) -> Relation:
        """The other extreme: ``φ_M(x_{H∪A})`` stored outright (§2.2)."""
        head = tuple(dict.fromkeys(tuple(self.head) + tuple(self.access)))
        cq = ConjunctiveQuery(head, self.atoms, name=f"{self.name}_M")
        return cq.evaluate(db)

    def default_constraints(self, db: Database) -> ConstraintSet:
        """DC with one cardinality constraint per atom (the §2 minimum)."""
        dc = ConstraintSet()
        for atom in self.atoms:
            dc.add_cardinality(atom.variables, max(1, len(db[atom.relation])))
        return dc

    def access_constraints(self, request_size: float = 1) -> ConstraintSet:
        """AC with the cardinality constraint ``(∅, A, |Q_A|)``.

        Empty for an empty access pattern: the nullary request carries no
        information beyond triggering the query.
        """
        ac = ConstraintSet()
        if self.access:
            ac.add_cardinality(self.access, max(1, request_size))
        return ac
