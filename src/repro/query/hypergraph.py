"""Hypergraphs over variable names (§2 of the paper).

A conjunctive query is associated with a hypergraph ``H = (V, E)`` whose
vertices are variables and whose hyperedges are atom schemas.  The class also
provides the connectivity helpers the decomposition layer needs.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

VarSet = FrozenSet[str]


def varset(variables: Iterable[str]) -> VarSet:
    """Normalize any iterable of variable names to a frozenset."""
    return frozenset(variables)


class Hypergraph:
    """A hypergraph with named vertices and frozenset hyperedges."""

    def __init__(self, vertices: Iterable[str],
                 edges: Iterable[Iterable[str]]) -> None:
        self.vertices: VarSet = varset(vertices)
        self.edges: Tuple[VarSet, ...] = tuple(varset(e) for e in edges)
        for edge in self.edges:
            if not edge <= self.vertices:
                raise ValueError(
                    f"edge {set(edge)} not within vertices {set(self.vertices)}"
                )

    def __repr__(self) -> str:
        edges = ", ".join("{" + ",".join(sorted(e)) + "}" for e in self.edges)
        return f"Hypergraph(V={sorted(self.vertices)}, E=[{edges}])"

    @property
    def edge_sets(self) -> Set[VarSet]:
        """The distinct hyperedges as a set."""
        return set(self.edges)

    def edges_containing(self, variable: str) -> List[VarSet]:
        """All hyperedges containing ``variable``."""
        return [e for e in self.edges if variable in e]

    def covers(self, subset: Iterable[str]) -> bool:
        """True when some single hyperedge contains ``subset``."""
        target = varset(subset)
        return any(target <= edge for edge in self.edges)

    # ------------------------------------------------------------------
    # connectivity
    # ------------------------------------------------------------------
    def neighbors(self, variable: str) -> VarSet:
        """Variables co-occurring with ``variable`` in some edge."""
        out: Set[str] = set()
        for edge in self.edges:
            if variable in edge:
                out |= edge
        out.discard(variable)
        return varset(out)

    def is_connected_subset(self, subset: Iterable[str]) -> bool:
        """True when ``subset`` induces a connected sub-hypergraph."""
        nodes = set(subset)
        if not nodes:
            return True
        start = next(iter(nodes))
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for edge in self.edges:
                if current in edge:
                    for other in edge & nodes:
                        if other not in seen:
                            seen.add(other)
                            frontier.append(other)
        return seen == nodes

    def connected_subsets(self, max_size: int = None) -> Iterator[VarSet]:
        """Enumerate nonempty connected vertex subsets (for bag candidates).

        Exponential in the vertex count; intended for the small hypergraphs
        (n <= 8 or so) the paper's examples use.
        """
        verts = sorted(self.vertices)
        limit = max_size or len(verts)
        for size in range(1, limit + 1):
            for combo in combinations(verts, size):
                if self.is_connected_subset(combo):
                    yield varset(combo)

    def with_edge(self, edge: Iterable[str]) -> "Hypergraph":
        """A copy of this hypergraph with one extra hyperedge."""
        return Hypergraph(self.vertices | varset(edge),
                          list(self.edges) + [varset(edge)])
