"""Query formalism: hypergraphs, CQs, CQAPs, and degree constraints."""

from repro.query.cq import Atom, CQAP, ConjunctiveQuery
from repro.query.constraints import (
    ConstraintSet,
    DegreeConstraint,
    SplitConstraint,
    cardinalities_from_database,
)
from repro.query.hypergraph import Hypergraph, VarSet, varset
from repro.query import catalog

__all__ = [
    "Atom",
    "CQAP",
    "ConjunctiveQuery",
    "ConstraintSet",
    "DegreeConstraint",
    "SplitConstraint",
    "cardinalities_from_database",
    "Hypergraph",
    "VarSet",
    "varset",
    "catalog",
]
