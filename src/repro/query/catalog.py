"""Catalog of the CQAPs the paper analyzes.

Every example query from the paper is constructible here by name, with the
same variable naming the paper uses (``x1 .. xk+1`` for paths, etc.), so the
tests and benchmarks can refer to them unambiguously.
"""

from __future__ import annotations

from typing import Sequence

from repro.query.cq import Atom, CQAP, ConjunctiveQuery


def k_path_cqap(k: int, boolean: bool = True) -> CQAP:
    """k-reachability (Example 2.3): φ_k(x1, x_{k+1} | x1, x_{k+1}).

    Atoms ``R_i(x_i, x_{i+1})`` for i in [k].  The paper's Boolean version
    has head = access = {x1, x_{k+1}}; since the framework requires H ⊇ A the
    Boolean and "normalized" versions coincide here.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    atoms = [Atom(f"R{i}", (f"x{i}", f"x{i + 1}")) for i in range(1, k + 1)]
    head = ("x1", f"x{k + 1}")
    return CQAP(head, head, atoms, name=f"path{k}")


def k_set_disjointness_cqap(k: int, boolean: bool = True) -> CQAP:
    """k-set disjointness / intersection (Example 2.2, §6.1).

    Encoding: ``R(y, x)`` = element y belongs to set x.  The Boolean variant
    is φ(x_[k] | x_[k]); the enumeration variant (non-Boolean, eq. (2)) keeps
    y in the head: φ(y, x_[k] | x_[k]).
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    atoms = [Atom(f"R{i}", ("y", f"x{i}")) for i in range(1, k + 1)]
    access = tuple(f"x{i}" for i in range(1, k + 1))
    head = access if boolean else ("y",) + access
    return CQAP(head, access, atoms,
                name=f"setdisj{k}" if boolean else f"setint{k}")


def square_cqap() -> CQAP:
    """The square query (Example 5.2 / E.5): φ(x1, x3 | x1, x3).

    Given two vertices, decide whether they sit on opposite corners of a
    square (4-cycle).
    """
    atoms = [
        Atom("R1", ("x1", "x2")),
        Atom("R2", ("x2", "x3")),
        Atom("R3", ("x3", "x4")),
        Atom("R4", ("x4", "x1")),
    ]
    return CQAP(("x1", "x3"), ("x1", "x3"), atoms, name="square")


def triangle_cqap() -> CQAP:
    """The triangle query with empty access pattern (Example E.4)."""
    atoms = [
        Atom("R1", ("x1", "x2")),
        Atom("R2", ("x2", "x3")),
        Atom("R3", ("x3", "x1")),
    ]
    return CQAP(("x1", "x3"), (), atoms, name="triangle")


def edge_triangle_cqap() -> CQAP:
    """Edge-triangle detection (§1): does edge (x1, x2) close a triangle?"""
    atoms = [
        Atom("R1", ("x1", "x2")),
        Atom("R2", ("x2", "x3")),
        Atom("R3", ("x3", "x1")),
    ]
    return CQAP(("x1", "x2"), ("x1", "x2"), atoms, name="edge_triangle")


def hierarchical_binary_tree_cqap() -> CQAP:
    """The Figure 6a hierarchical CQAP (§F, Example F.5).

    φ(Z | Z) with Z = {z1, z2, z3, z4}, body
    R(x,y1,z1) ∧ S(x,y1,z2) ∧ T(x,y2,z3) ∧ U(x,y2,z4).
    """
    atoms = [
        Atom("R", ("x", "y1", "z1")),
        Atom("S", ("x", "y1", "z2")),
        Atom("T", ("x", "y2", "z3")),
        Atom("U", ("x", "y2", "z4")),
    ]
    z = ("z1", "z2", "z3", "z4")
    return CQAP(z, z, atoms, name="hier_tree")


def online_yannakakis_example_cq() -> ConjunctiveQuery:
    """The Example A.1 free-connex acyclic CQ used to illustrate Online
    Yannakakis (Figure 5).

    ψ(x_H) ← Q12 ∧ T12 ∧ T13 ∧ T345 ∧ S45 ∧ S37 ∧ S78 with
    H = {x1,x2,x3,x4,x7,x8}.  Relation names match the paper's view labels.
    """
    atoms = [
        Atom("Q12", ("x1", "x2")),
        Atom("T12", ("x1", "x2")),
        Atom("T13", ("x1", "x3")),
        Atom("T345", ("x3", "x4", "x5")),
        Atom("S45", ("x4", "x5", "x6")),
        Atom("S37", ("x3", "x7")),
        Atom("S78", ("x7", "x8", "x9")),
    ]
    head = ("x1", "x2", "x3", "x4", "x7", "x8")
    return ConjunctiveQuery(head, atoms, name="exA1")


def two_set_disjointness_cqap() -> CQAP:
    """2-set disjointness (§1): φ(|y1, y2) ← R(x, y1) ∧ R(x, y2).

    Uses the paper's intro naming; equivalent to k_set_disjointness_cqap(2)
    up to renaming.
    """
    atoms = [Atom("R1", ("x", "y1")), Atom("R2", ("x", "y2"))]
    return CQAP(("y1", "y2"), ("y1", "y2"), atoms, name="2setdisj")


NAMED_QUERIES = {
    "path2": lambda: k_path_cqap(2),
    "path3": lambda: k_path_cqap(3),
    "path4": lambda: k_path_cqap(4),
    "square": square_cqap,
    "triangle": triangle_cqap,
    "edge_triangle": edge_triangle_cqap,
    "setdisj2": lambda: k_set_disjointness_cqap(2),
    "setdisj3": lambda: k_set_disjointness_cqap(3),
    "setint2": lambda: k_set_disjointness_cqap(2, boolean=False),
    "hier_tree": hierarchical_binary_tree_cqap,
}


def by_name(name: str) -> CQAP:
    """Look up a catalog query by its paper-facing name."""
    try:
        return NAMED_QUERIES[name]()
    except KeyError as exc:
        raise KeyError(
            f"unknown query {name!r}; known: {sorted(NAMED_QUERIES)}"
        ) from exc
