"""Degree constraints, constraint sets, and split constraints (§2, Def. C.2).

A *degree constraint* is a triple ``(X, Y, N_{Y|X})`` with ``X ⊂ Y``: in the
guard relation, every ``X``-value has at most ``N_{Y|X}`` distinct
``Y``-extensions.  ``X = ∅`` makes it a *cardinality constraint*.

A :class:`ConstraintSet` maintains the paper's *best constraints assumption*
(at most one constraint per (X, Y) pair — keep the minimum bound) and knows
how to span its *split constraints* ``SC`` (Def. C.2), which couple the
preprocessing and online polymatroids in the joint Shannon-flow LP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.data.relation import Relation
from repro.query.hypergraph import VarSet, varset


@dataclass(frozen=True)
class DegreeConstraint:
    """``(X, Y, N_{Y|X})`` guarded by some relation with schema ⊇ Y."""

    x: VarSet
    y: VarSet
    bound: float  # N_{Y|X}; float so +inf can express "unconstrained"

    def __post_init__(self) -> None:
        if not self.x < self.y:
            raise ValueError(
                f"degree constraint requires X ⊂ Y, got X={set(self.x)}, "
                f"Y={set(self.y)}"
            )
        if self.bound < 1:
            raise ValueError("degree bounds must be >= 1")

    @property
    def is_cardinality(self) -> bool:
        """True for cardinality constraints (X = ∅)."""
        return not self.x

    @property
    def log_bound(self) -> float:
        """``n_{Y|X} = log2 N_{Y|X}``."""
        return math.log2(self.bound)

    def __repr__(self) -> str:
        x = "{" + ",".join(sorted(self.x)) + "}"
        y = "{" + ",".join(sorted(self.y)) + "}"
        return f"DC({x} -> {y} <= {self.bound:g})"

    @classmethod
    def cardinality(cls, variables: Iterable[str], bound: float) -> "DegreeConstraint":
        """Convenience builder for ``(∅, Y, N)``."""
        return cls(varset(()), varset(variables), bound)

    def satisfied_by(self, relation: Relation) -> bool:
        """Check the constraint against an actual relation (guard test)."""
        if not self.y <= relation.variables:
            return False
        if self.is_cardinality:
            return len(relation.project(sorted(self.y))) <= self.bound
        proj = relation.project(sorted(self.y))
        return proj.degree(sorted(self.x)) <= self.bound


@dataclass(frozen=True)
class SplitConstraint:
    """``(X, Y|X, N_{Z|∅})`` — Def. C.2.

    Encodes the splitting property: the guard of the cardinality constraint on
    ``Z`` can be partitioned so that ``N_X * N_{Y|X} <= N_Z`` holds piecewise.
    In the joint LP it contributes both correlated terms
    ``h_S(X) + h_T(Y|X) <= log N_Z`` and ``h_S(Y|X) + h_T(X) <= log N_Z``.
    """

    x: VarSet
    y: VarSet
    cardinality_bound: float  # N_{Z|∅} of the spanning cardinality constraint
    z: VarSet                 # the Z of the spanning constraint

    @property
    def log_bound(self) -> float:
        return math.log2(self.cardinality_bound)

    def __repr__(self) -> str:
        x = "{" + ",".join(sorted(self.x)) + "}"
        y = "{" + ",".join(sorted(self.y)) + "}"
        z = "{" + ",".join(sorted(self.z)) + "}"
        return f"SC({x}, {y}|{x}; N_{z} <= {self.cardinality_bound:g})"


class ConstraintSet:
    """A set of degree constraints under the best-constraints assumption."""

    def __init__(self, constraints: Iterable[DegreeConstraint] = ()) -> None:
        self._by_pair: Dict[Tuple[VarSet, VarSet], DegreeConstraint] = {}
        for constraint in constraints:
            self.add(constraint)

    def add(self, constraint: DegreeConstraint) -> None:
        """Insert, keeping only the minimum bound per (X, Y) pair."""
        key = (constraint.x, constraint.y)
        existing = self._by_pair.get(key)
        if existing is None or constraint.bound < existing.bound:
            self._by_pair[key] = constraint

    def add_cardinality(self, variables: Iterable[str], bound: float) -> None:
        self.add(DegreeConstraint.cardinality(variables, bound))

    def add_degree(self, x: Iterable[str], y: Iterable[str],
                   bound: float) -> None:
        self.add(DegreeConstraint(varset(x), varset(y), bound))

    def __iter__(self) -> Iterator[DegreeConstraint]:
        return iter(self._by_pair.values())

    def __len__(self) -> int:
        return len(self._by_pair)

    def __contains__(self, pair: Tuple[VarSet, VarSet]) -> bool:
        return pair in self._by_pair

    def get(self, x: Iterable[str], y: Iterable[str]) -> Optional[DegreeConstraint]:
        return self._by_pair.get((varset(x), varset(y)))

    def bound(self, x: Iterable[str], y: Iterable[str]) -> float:
        """N_{Y|X}, or +inf when the pair is unconstrained."""
        constraint = self.get(x, y)
        return constraint.bound if constraint else math.inf

    @property
    def cardinalities(self) -> List[DegreeConstraint]:
        return [c for c in self if c.is_cardinality]

    def union(self, other: "ConstraintSet") -> "ConstraintSet":
        """Best-constraint merge of two sets (used for DC ∪ AC)."""
        merged = ConstraintSet(self)
        for constraint in other:
            merged.add(constraint)
        return merged

    def copy(self) -> "ConstraintSet":
        return ConstraintSet(self)

    def __repr__(self) -> str:
        return "ConstraintSet(" + ", ".join(map(repr, self)) + ")"

    # ------------------------------------------------------------------
    # split constraints
    # ------------------------------------------------------------------
    def split_constraints(self) -> List[SplitConstraint]:
        """Span SC from every cardinality constraint (Def. C.2).

        For each ``(∅, Z, N_Z)`` and every pair ``∅ ≠ X ⊂ Y ⊆ Z`` we emit one
        split constraint.  The count is exponential in ``|Z|`` but tiny for
        the arities the paper uses (binary/ternary atoms).
        """
        best: Dict[Tuple[VarSet, VarSet], SplitConstraint] = {}
        for constraint in self.cardinalities:
            z = constraint.y
            members = sorted(z)
            # enumerate Y ⊆ Z and nonempty X ⊂ Y
            for y_mask in range(1, 1 << len(members)):
                y = varset(m for i, m in enumerate(members)
                           if y_mask >> i & 1)
                for x_mask in range(1, y_mask):
                    if x_mask & ~y_mask:
                        continue
                    x = varset(m for i, m in enumerate(members)
                               if x_mask >> i & 1)
                    key = (x, y)
                    current = best.get(key)
                    if current is None or constraint.bound < current.cardinality_bound:
                        best[key] = SplitConstraint(x, y, constraint.bound, z)
        return list(best.values())

    # ------------------------------------------------------------------
    # guard checking
    # ------------------------------------------------------------------
    def guarded_by(self, relations: Iterable[Relation]) -> bool:
        """True when every constraint is guarded by some relation."""
        relations = list(relations)
        return all(
            any(c.satisfied_by(rel) for rel in relations
                if c.y <= rel.variables)
            for c in self
        )


def cardinalities_from_database(db, atoms) -> ConstraintSet:
    """Build DC containing one cardinality constraint per atom from a database.

    ``atoms`` is an iterable of (relation_name, schema-variables) pairs; each
    contributes ``(∅, vars, |R|)``.
    """
    dc = ConstraintSet()
    for name, variables in atoms:
        dc.add_cardinality(variables, max(1, len(db[name])))
    return dc


def constraints_from_statistics(stats) -> ConstraintSet:
    """DC rebuilt from already-measured catalog statistics.

    ``stats`` is a :class:`repro.tradeoff.cost.CatalogStatistics` (duck-
    typed to keep the layering acyclic): every atom contributes its
    cardinality constraint plus one degree constraint per measured key —
    the single-variable max degrees and the multi-variable set-degree
    keys.  This is the same information :func:`measured_constraints`
    gathers, but free (the cost model has already paid for the passes) and
    including the variable-*set* keys the cost model measures, so the
    planner's LP and the selection estimates read from one catalog.
    """
    dc = ConstraintSet()
    for atom in stats.atoms:
        variables = tuple(atom.variables)
        dc.add_cardinality(variables, atom.cardinality)
        for var, degree in atom.degrees:
            if len(variables) > 1:
                dc.add_degree((var,), variables, max(1, degree))
        for key, degree in getattr(atom, "set_degrees", ()):
            if len(key) < len(variables):
                dc.add_degree(key, variables, max(1, degree))
    return dc


def measured_constraints(db, atoms, max_key_size: int = 2) -> ConstraintSet:
    """DC with cardinalities plus *measured* degree constraints.

    For every atom and every nonempty key ``X ⊂ vars`` with ``|X| <=
    max_key_size``, adds ``(X, vars, max observed degree)``.  The paper's
    framework takes any DC guarded by the instance; feeding measured degrees
    makes the planner's worst-case bounds track the actual data instead of
    the cardinality-only pessimum.

    ``atoms`` is an iterable of (relation_name, variables) pairs.
    """
    from itertools import combinations

    dc = ConstraintSet()
    for name, variables in atoms:
        relation = db[name]
        variables = tuple(variables)
        dc.add_cardinality(variables, max(1, len(relation)))
        rebound = relation
        if relation.schema != variables:
            from repro.data.relation import Relation

            rebound = Relation(name, variables, relation.tuples)
        for size in range(1, min(max_key_size, len(variables) - 1) + 1):
            for key in combinations(variables, size):
                degree = rebound.degree(key)
                dc.add_degree(key, variables, max(1, degree))
    return dc
