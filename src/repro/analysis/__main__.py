"""``python -m repro.analysis`` — lint the tree, then verify built plans.

Exit status is 0 only when every requested check passes: the lint pass
found no findings and (with ``--verify-plans``) every scenario in the
fixed build-and-verify matrix passed static plan verification.  This is
the command the ``static-analysis`` CI job runs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis.lint import all_rules, lint_paths, render_json, render_text


def _default_lint_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def _run_lint(paths: Sequence[Path], as_json: bool,
              select: Optional[Sequence[str]]) -> int:
    rules = all_rules()
    if select:
        wanted = set(select)
        unknown = wanted - {r.code for r in rules}
        if unknown:
            print(f"unknown rule code(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        rules = [r for r in rules if r.code in wanted]
    findings = lint_paths(paths, rules=rules)
    if as_json:
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


def _scenario_matrix() -> List[Tuple[str, object, object]]:
    """The fixed (label, cqap, db) scenarios ``--verify-plans`` builds."""
    from repro import catalog, path_database, triangle_database
    from repro.query.catalog import triangle_cqap

    return [
        ("2-path", catalog.k_path_cqap(2),
         path_database(k=2, n_edges=240, domain=60, seed=11)),
        ("3-path", catalog.k_path_cqap(3),
         path_database(k=3, n_edges=240, domain=60, seed=12)),
        ("triangle", triangle_cqap(),
         triangle_database(n_edges=200, domain=40, seed=13)),
    ]


def _run_verify_plans() -> int:
    """Build the fixed scenario matrix and statically verify every index.

    Sweeps budget ∈ {lean, medium, rich} × backend ∈ {set, columnar} ×
    shards ∈ {1, 4}, with a low ``auto_select_threshold`` so the
    budgeted beam selection is exercised, mirroring the differential
    harness's configuration axes.  Budget-infeasible cells (PlanningError)
    are reported and skipped — infeasibility is a legitimate planner
    outcome, not a verification failure.
    """
    from repro.core.index import CQAPIndex
    from repro.core.two_phase import PlanningError
    from repro.tradeoff.cost import CatalogStatistics

    failures = 0
    cells = 0
    skipped = 0
    for label, cqap, db in _scenario_matrix():
        statistics = CatalogStatistics.from_database(cqap, db)
        for budget in (2.0, float(db.total_tuples), 10.0 ** 7):
            for backend in ("set", "columnar"):
                for shards in (1, 4):
                    cells += 1
                    cell = (f"{label} budget={budget:g} backend={backend} "
                            f"shards={shards}")
                    try:
                        index = CQAPIndex(
                            cqap, db, space_budget=budget,
                            auto_select_threshold=4,
                            relation_backend=backend,
                            shards=shards,
                            statistics=statistics,
                        ).preprocess(verify_plans=True)
                    except PlanningError as exc:
                        skipped += 1
                        print(f"  skip  {cell}: infeasible ({exc})")
                        continue
                    except Exception as exc:  # verification failure included
                        failures += 1
                        print(f"  FAIL  {cell}: {exc}")
                        continue
                    print(f"  ok    {cell}: "
                          f"{len(index.selection.rules)} rules, "
                          f"{index.stats.stored_tuples} stored tuples")
    print(f"verify-plans: {cells - failures - skipped} ok, "
          f"{skipped} infeasible, {failures} failed, {cells} cells")
    return 1 if failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="project-invariant linter + static plan verifier",
    )
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files/directories to lint "
                             "(default: the installed repro package)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON")
    parser.add_argument("--select", action="append", metavar="CODE",
                        help="run only these rule codes (repeatable)")
    parser.add_argument("--verify-plans", action="store_true",
                        help="also build-and-verify the fixed scenario "
                             "matrix with the static plan verifier")
    parser.add_argument("--no-lint", action="store_true",
                        help="skip the lint pass (verify plans only)")
    args = parser.parse_args(argv)

    status = 0
    if not args.no_lint:
        paths = list(args.paths) or [_default_lint_root()]
        status = _run_lint(paths, args.json, args.select)
        if status == 2:
            return status
    if args.verify_plans:
        status = max(status, _run_verify_plans())
    return status


if __name__ == "__main__":
    sys.exit(main())
