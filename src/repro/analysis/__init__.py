"""Static analysis for the repro codebase: linter + plan verifier.

Two halves:

* :mod:`repro.analysis.lint` — an AST-based project linter with rules
  REP001–REP005 derived from real past bugs (lock discipline, counter
  hygiene, pickle safety, stats-envelope conformance, bare asserts).
* :mod:`repro.analysis.verify_plan` — pure functions that statically
  check a built ``CQAPIndex`` / ``SelectionResult`` /
  ``CompiledProbePlan`` without executing a probe (§4.2 rule soundness,
  ledger re-derivation, subset-minimality, compile-time index pinning).

Run both from the command line::

    python -m repro.analysis                 # lint src/repro
    python -m repro.analysis --verify-plans  # + build-and-verify matrix
"""

from repro.analysis.lint import (
    Finding,
    all_rules,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)
from repro.analysis.verify_plan import (
    PlanVerificationError,
    check_index,
    verify_compiled_plans,
    verify_index,
    verify_selection,
)

__all__ = [
    "Finding",
    "all_rules",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "PlanVerificationError",
    "check_index",
    "verify_compiled_plans",
    "verify_index",
    "verify_selection",
]
