"""Static verification of built plans and selections — no probe executed.

The paper's §4.2 soundness conditions, the selection ledger's arithmetic,
and the compile-time index-pinning contract are all *checkable properties
of the plan*, independent of any particular execution.  This module
checks them on a built :class:`~repro.core.index.CQAPIndex` (or its
parts) and reports every violation as a human-readable issue string:

* **Rule soundness** — every selected rule's targets are schemas of the
  selected PMTDs' views (matching kind), the union of each rule's S∪T
  targets covers the query head, and every PMTD's views jointly cover
  the head (so Online Yannakakis can produce ψ_i at all).
* **Routing well-definedness** — the per-rule S-view key schemas agree
  with :func:`~repro.tradeoff.selection.shard_fraction`: a view is
  priced as partitioned iff its schema contains every access variable,
  which is exactly when hash-routing a probe to one shard is sound.
* **Ledger re-derivation** — re-running the pure routing core
  (:func:`~repro.tradeoff.selection.route_estimates`) on the stored
  estimates reproduces the stored routes, space/time totals (per-shard
  pricing included) and the ``over_budget`` flag.
* **Subset-minimality** — no selected rule is dominated by another
  (:meth:`~repro.tradeoff.rules.TwoPhaseRule.no_easier_than`).
* **Compile-time pinning** — every static participant of every
  :class:`~repro.core.kernels.CompiledProbePlan` has its hash index
  built (and its membership index, when it shares a level), and the
  per-probe request slot has none.

``check_index`` raises :class:`PlanVerificationError`;
``verify_index`` returns the issue list for callers that want to report.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence, Set, Tuple

from repro.query.cq import CQAP
from repro.tradeoff.selection import (
    PMTD_OVERHEAD,
    SelectionResult,
    route_estimates,
    shard_fraction,
)

__all__ = [
    "PlanVerificationError",
    "verify_selection",
    "verify_compiled_plans",
    "verify_index",
    "check_index",
]

#: relative tolerance for re-derived ledger totals (the re-derivation
#: replays the exact float operations, so this only absorbs noise from a
#: snapshot round-tripped through JSON)
_REL_TOL = 1e-9


class PlanVerificationError(RuntimeError):
    """A built plan/selection failed static verification."""

    def __init__(self, issues: Sequence[str]) -> None:
        self.issues: List[str] = list(issues)
        lines = "\n  - ".join(self.issues)
        super().__init__(
            f"plan verification failed ({len(self.issues)} issue(s)):"
            f"\n  - {lines}"
        )


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _REL_TOL * max(1.0, abs(a), abs(b))


def verify_selection(selection: SelectionResult, cqap: CQAP) -> List[str]:
    """Statically check one selection against its query; returns issues."""
    issues: List[str] = []
    qvars = set(cqap.variables)
    access = tuple(cqap.access)
    # the per-probe request Q_A supplies the access binding, so views only
    # need to cover the head variables the probe does not already carry
    head = set(cqap.head) - set(access)

    # --- structure: estimates parallel to rules --------------------------
    if len(selection.estimates) != len(selection.rules):
        issues.append(
            f"estimates ({len(selection.estimates)}) not parallel to rules "
            f"({len(selection.rules)})"
        )
        return issues  # everything downstream needs the pairing
    for rule, est in zip(selection.rules, selection.estimates):
        if est.rule is not rule and est.rule != rule:
            issues.append(
                f"estimate for {est.rule.label} paired with rule {rule.label}"
            )

    # --- §4.2 rule soundness --------------------------------------------
    s_schemas: Set[frozenset] = set()
    t_schemas: Set[frozenset] = set()
    for pmtd in selection.pmtds:
        covered: Set[str] = set()
        for view in pmtd.s_views.values():
            if view.variables:
                s_schemas.add(frozenset(view.variables))
            covered |= set(view.variables)
        for view in pmtd.t_views.values():
            if view.variables:
                t_schemas.add(frozenset(view.variables))
            covered |= set(view.variables)
        if not head <= covered:
            issues.append(
                f"PMTD views cover {sorted(covered)} but not the non-access "
                f"head {sorted(head)}: ψ cannot be produced"
            )
    filled_s: Set[frozenset] = set()
    filled_t: Set[frozenset] = set()
    for rule in selection.rules:
        for target in rule.s_targets:
            filled_s.add(frozenset(target))
            if not set(target) <= qvars:
                issues.append(
                    f"rule {rule.label}: S-target {sorted(target)} uses "
                    f"variables outside the query"
                )
            if frozenset(target) not in s_schemas:
                issues.append(
                    f"rule {rule.label}: S-target {sorted(target)} is not "
                    f"an S-view schema of any selected PMTD"
                )
        for target in rule.t_targets:
            filled_t.add(frozenset(target))
            if not set(target) <= qvars:
                issues.append(
                    f"rule {rule.label}: T-target {sorted(target)} uses "
                    f"variables outside the query"
                )
            if frozenset(target) not in t_schemas:
                issues.append(
                    f"rule {rule.label}: T-target {sorted(target)} is not "
                    f"a T-view schema of any selected PMTD"
                )
    # completeness: a single rule fills *one* view per phase; the rule
    # *set* must jointly fill every nonempty view of the selected PMTDs,
    # otherwise Online Yannakakis joins against a silently-empty view and
    # drops answers.  (An S-view can also be filled through a same-schema
    # T-target: preprocessing unions same-schema targets into views.)
    for schema in sorted(s_schemas, key=sorted):
        if schema not in filled_s and schema not in filled_t:
            issues.append(
                f"S-view schema {sorted(schema)} of a selected PMTD is "
                f"filled by no rule in the set"
            )
    for schema in sorted(t_schemas, key=sorted):
        if schema not in filled_t and schema not in filled_s:
            issues.append(
                f"T-view schema {sorted(schema)} of a selected PMTD is "
                f"filled by no rule in the set"
            )

    # --- subset-minimality ----------------------------------------------
    for i, a in enumerate(selection.rules):
        for j, b in enumerate(selection.rules):
            if i == j:
                continue
            if (a.s_targets, a.t_targets) == (b.s_targets, b.t_targets):
                if i < j:
                    issues.append(f"duplicate rules {a.label} / {b.label}")
                continue
            if a.no_easier_than(b):
                issues.append(
                    f"rule {a.label} is dominated by {b.label} "
                    f"(componentwise containment): rule set is not "
                    f"subset-minimal"
                )

    # --- routing well-definedness ---------------------------------------
    for entry in selection.s_view_keys(access):
        target = set(entry["s_target"])
        partitionable = bool(access) and set(access) <= target
        if entry["partitionable"] != partitionable:
            issues.append(
                f"rule {entry['rule']}: s_view_keys says partitionable="
                f"{entry['partitionable']} but access {access} ⊆ "
                f"{sorted(target)} is {partitionable}"
            )
        expected_prefix = access if partitionable else ()
        if tuple(entry["access_prefix"]) != expected_prefix:
            issues.append(
                f"rule {entry['rule']}: access_prefix "
                f"{entry['access_prefix']} disagrees with partitionability "
                f"(expected {expected_prefix})"
            )
        # the pricing fraction must agree with the routing key: a target
        # priced as partitioned (fraction < 1) must be hash-routable
        frac = shard_fraction(target, access, shards=max(2, selection.shards))
        if (frac < 1.0) != partitionable:
            issues.append(
                f"rule {entry['rule']}: shard_fraction prices target "
                f"{sorted(target)} as "
                f"{'partitioned' if frac < 1.0 else 'replicated'} but the "
                f"routing key says partitionable={partitionable}"
            )

    # --- ledger re-derivation -------------------------------------------
    space, time, routed, over = route_estimates(
        selection.estimates, selection.space_budget,
        shards=selection.shards, access=access,
    )
    for est, re_est in zip(selection.estimates, routed):
        if est.route != re_est.route:
            issues.append(
                f"rule {est.rule.label}: stored route {est.route!r} but "
                f"re-derived route {re_est.route!r}"
            )
    if not _close(space, selection.estimated_space):
        issues.append(
            f"estimated_space {selection.estimated_space!r} does not "
            f"re-derive (ledger gives {space!r})"
        )
    expected_time = time + PMTD_OVERHEAD * len(selection.pmtds)
    if not _close(expected_time, selection.estimated_time):
        issues.append(
            f"estimated_time {selection.estimated_time!r} does not "
            f"re-derive (ledger gives {expected_time!r})"
        )
    if over != selection.over_budget:
        issues.append(
            f"over_budget={selection.over_budget} but the ledger "
            f"re-derives {over}"
        )

    # --- snapshot consistency -------------------------------------------
    snap = selection.snapshot()
    if snap["routes"] != [est.route for est in selection.estimates]:
        issues.append("snapshot routes disagree with the routed estimates")
    if snap["rules"] != [rule.label for rule in selection.rules]:
        issues.append("snapshot rule labels disagree with the rule set")
    if snap["selected_pmtds"] != len(selection.pmtds):
        issues.append("snapshot selected_pmtds disagrees with the PMTD set")
    return issues


def verify_compiled_plans(steps: Iterable[Any]) -> List[str]:
    """Check compile-time pinning on every step's compiled probe plan."""
    issues: List[str] = []
    for pos, step in enumerate(steps):
        plan = getattr(step, "plan", None)
        if plan is None:
            continue
        label = f"step {pos} ({getattr(step, 'name', '?')})"
        if not set(plan.onto) <= set(plan.order):
            issues.append(
                f"{label}: output schema {plan.onto} not covered by the "
                f"variable order {plan.order}"
            )
        for part in plan.iter_participants():
            where = (f"{label}, depth {part.depth} ({part.var}), "
                     f"slot {part.slot}")
            if part.pinnable:
                if part.index is None:
                    issues.append(
                        f"{where}: static participant has no hash index "
                        f"pinned at compile time"
                    )
                if part.shares_level and part.membership_index is None:
                    issues.append(
                        f"{where}: static participant shares its level but "
                        f"has no membership index pinned at compile time"
                    )
            else:
                if part.index is not None or part.membership_index is not None:
                    issues.append(
                        f"{where}: per-probe request slot must never pin "
                        f"an index (its relation changes every probe)"
                    )
    return issues


def verify_index(index: Any) -> List[str]:
    """All static checks on a preprocessed :class:`CQAPIndex`."""
    if not getattr(index, "ready", False):
        return ["index is not preprocessed (call preprocess() first)"]
    issues = verify_selection(index.selection, index.cqap)

    # materialized S-targets are keyed by their own schema
    stored = 0
    for target, relation in index.s_targets.items():
        stored += len(relation)
        if set(relation.schema) != set(target):
            issues.append(
                f"S-target keyed {sorted(target)} holds a relation with "
                f"schema {relation.schema}"
            )
    if index.stats.stored_tuples != stored:
        issues.append(
            f"stats.stored_tuples={index.stats.stored_tuples} but the "
            f"S-targets hold {stored} tuples"
        )
    expected_sizes = {
        "|".join(sorted(schema)): len(rel)
        for schema, rel in index.s_targets.items()
    }
    if index.stats.s_view_tuples != expected_sizes:
        issues.append("stats.s_view_tuples disagrees with the S-targets")
    if index.stats.selection != index.selection.snapshot():
        issues.append(
            "stats.selection snapshot is stale (does not match the live "
            "selection)"
        )

    issues.extend(verify_compiled_plans(index.compiled_online))
    return issues


def check_index(index: Any) -> None:
    """Raise :class:`PlanVerificationError` if ``verify_index`` finds issues."""
    issues = verify_index(index)
    if issues:
        raise PlanVerificationError(issues)
