"""Concrete lint rules REP001–REP005, each derived from a real past bug.

Every rule documents the invariant it enforces and the approximations it
makes; false positives are silenced per-line with ``# repro: noqa[CODE]``.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.framework import (
    ClassInfo,
    Finding,
    ModuleInfo,
    Project,
    Rule,
    iter_self_reads,
    iter_self_writes,
    register,
)
from repro.serving.stats import REQUIRED_KEYS, STATS_SCHEMA_VERSION

__all__ = [
    "LockDisciplineRule",
    "CounterHygieneRule",
    "PickleSafetyRule",
    "StatsEnvelopeRule",
    "BareAssertRule",
]

#: the bump targets of :class:`repro.util.counters.Counters`
COUNTER_FIELDS = frozenset({"probes", "scans", "stores", "joins_emitted"})

#: methods whose call graph must never charge shared counters
HYGIENE_DUNDERS = ("__eq__", "__hash__", "__repr__")

#: envelope sections a layer may pass to ``stats_envelope`` (everything
#: but the version stamp, which the envelope adds itself)
ENVELOPE_SECTIONS = frozenset(k for k in REQUIRED_KEYS if k != "schema_version")

#: dunder attributes slots declare that are not real state
_NON_STATE_SLOTS = frozenset({"__weakref__", "__dict__"})


def _iter_classes(module: ModuleInfo) -> Iterator[ast.ClassDef]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef):
            yield node


def _methods(node: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt for stmt in node.body if isinstance(stmt, ast.FunctionDef)
    }


def _self_lock_attr(expr: ast.expr) -> Optional[str]:
    """``self.<attr>`` where the attribute name suggests a lock."""
    if (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and "lock" in expr.attr.lower()):
        return expr.attr
    return None


@register
class LockDisciplineRule(Rule):
    """REP001: state guarded by a lock is guarded *everywhere*.

    If any method of a class mutates ``self.x`` inside ``with
    self._lock:`` (any ``self`` attribute whose name contains ``lock``),
    then every other mutation of ``self.x`` must also hold that lock.
    ``__init__`` is exempt — no other thread can hold a reference yet.

    This is the PR 5 thread-safety contract on ``LRUCache``,
    ``PreparedQuery`` and ``BatchScheduler``: a single unguarded ``+=``
    on a stats counter is a lost-update race.
    """

    code = "REP001"
    name = "lock-discipline"
    description = ("attributes mutated under a self.*lock* must never be "
                   "mutated outside it (``__init__`` exempt)")

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        for cls in _iter_classes(module):
            yield from self._check_class(module, cls)

    def _check_class(self, module: ModuleInfo,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        # (attr, method, stmt, locks-held) for every self-attr mutation
        mutations: List[Tuple[str, str, ast.AST, FrozenSet[str]]] = []
        for name, fn in _methods(cls).items():
            self._collect(fn.body, name, frozenset(), mutations)
        guarded: Set[str] = {
            attr for attr, _method, _stmt, held in mutations if held
        }
        if not guarded:
            return
        for attr, method, stmt, held in mutations:
            if attr in guarded and not held and method != "__init__":
                yield self.finding(
                    module, stmt,
                    f"attribute '{attr}' is mutated under a lock elsewhere "
                    f"in {cls.name} but mutated lock-free in {method}()",
                )

    def _collect(self, stmts: Sequence[ast.stmt], method: str,
                 held: FrozenSet[str],
                 out: List[Tuple[str, str, ast.AST, FrozenSet[str]]]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign,
                                 ast.Delete)):
                for attr, node in _stmt_self_writes(stmt):
                    out.append((attr, method, node, held))
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                locks = frozenset(
                    lock for item in stmt.items
                    if (lock := _self_lock_attr(item.context_expr)) is not None
                )
                self._collect(stmt.body, method, held | locks, out)
            elif isinstance(stmt, (ast.If,)):
                self._collect(stmt.body, method, held, out)
                self._collect(stmt.orelse, method, held, out)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                self._collect(stmt.body, method, held, out)
                self._collect(stmt.orelse, method, held, out)
            elif isinstance(stmt, ast.Try):
                self._collect(stmt.body, method, held, out)
                for handler in stmt.handlers:
                    self._collect(handler.body, method, held, out)
                self._collect(stmt.orelse, method, held, out)
                self._collect(stmt.finalbody, method, held, out)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # a closure runs later, possibly without the lock; treat
                # its mutations as lock-free unless it re-acquires
                self._collect(stmt.body, method, frozenset(), out)


def _stmt_self_writes(stmt: ast.stmt) -> Iterator[Tuple[str, ast.AST]]:
    """Self-attribute mutations of a *single* statement (no recursion)."""

    def _attr(target: ast.expr) -> Optional[str]:
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            return target.attr
        return None

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            parts = target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
            for part in parts:
                attr = _attr(part)
                if attr is not None:
                    yield attr, stmt
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        if isinstance(stmt, ast.AnnAssign) and stmt.value is None:
            return
        attr = _attr(stmt.target)
        if attr is not None:
            yield attr, stmt
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            attr = _attr(target)
            if attr is not None:
                yield attr, stmt


def _has_counters_param(fn: ast.FunctionDef) -> bool:
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return "counters" in names


def _passes_counters_kwarg(call: ast.Call) -> bool:
    return any(kw.arg == "counters" for kw in call.keywords)


@register
class CounterHygieneRule(Rule):
    """REP002: no shared-``Counters`` bumps reachable from value dunders.

    ``__eq__``/``__hash__``/``__repr__`` run inside asserts, logging and
    test comparisons; charging the global (or an engine's) instrumentation
    counters from them makes counter parity checks flaky — the PR 7
    ``Relation.__eq__`` bug.  Starting from each dunder and following
    ``self.*`` calls, flags (a) ``+=`` bumps of counter fields on anything
    but a local throwaway ``Counters()``, and (b) calls to same-class
    methods that take a ``counters`` parameter without passing an explicit
    ``counters=`` argument (the default routes to the shared instance).
    """

    code = "REP002"
    name = "counter-hygiene"
    description = ("no Counters bumps reachable from __eq__/__hash__/"
                   "__repr__ without an explicit throwaway")

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        for cls in _iter_classes(module):
            yield from self._check_class(module, cls)

    def _check_class(self, module: ModuleInfo,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        methods = _methods(cls)
        roots = [d for d in HYGIENE_DUNDERS if d in methods]
        if not roots:
            return
        tainted: Set[str] = set()
        queue = list(roots)
        while queue:
            name = queue.pop()
            if name in tainted:
                continue
            tainted.add(name)
            for node in ast.walk(methods[name]):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "self"
                        and func.attr in methods):
                    callee = methods[func.attr]
                    if _has_counters_param(callee) and _passes_counters_kwarg(node):
                        continue  # explicitly redirected; not tainted
                    queue.append(func.attr)
        for name in sorted(tainted):
            root_note = "" if name in roots else f" (reachable from {'/'.join(roots)})"
            yield from self._check_method(module, cls, methods, methods[name],
                                          root_note)

    def _check_method(self, module: ModuleInfo, cls: ast.ClassDef,
                      methods: Dict[str, ast.FunctionDef],
                      fn: ast.FunctionDef, root_note: str) -> Iterator[Finding]:
        throwaway = _throwaway_counter_locals(fn)
        for node in ast.walk(fn):
            if isinstance(node, ast.AugAssign):
                target = node.target
                if (isinstance(target, ast.Attribute)
                        and target.attr in COUNTER_FIELDS):
                    base = target.value
                    if isinstance(base, ast.Name) and base.id in throwaway:
                        continue
                    yield self.finding(
                        module, node,
                        f"{cls.name}.{fn.name}(){root_note} bumps counter "
                        f"field '{target.attr}' on a non-throwaway receiver",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in methods
                        and _has_counters_param(methods[func.attr])
                        and not _passes_counters_kwarg(node)):
                    yield self.finding(
                        module, node,
                        f"{cls.name}.{fn.name}(){root_note} calls "
                        f"{func.attr}() without an explicit counters= "
                        f"argument; the default charges shared counters",
                    )


def _throwaway_counter_locals(fn: ast.FunctionDef) -> Set[str]:
    """Locals assigned from a ``Counters()`` construction in ``fn``."""
    out: Set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        ctor = (isinstance(value, ast.Call)
                and ((isinstance(value.func, ast.Name)
                      and value.func.id == "Counters")
                     or (isinstance(value.func, ast.Attribute)
                         and value.func.attr == "Counters")))
        if not ctor:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                out.add(target.id)
    return out


def _rebinding_writes(fn: ast.FunctionDef) -> Set[str]:
    """Attributes *rebound* (not just augmented) by ``fn``."""
    out: Set[str] = set()
    for attr, node in iter_self_writes(fn):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            out.add(attr)
    return out


@register
class PickleSafetyRule(Rule):
    """REP003: state dropped by ``__getstate__`` must be rebuilt.

    For every class with a ``__getstate__`` (its own or inherited —
    resolved project-wide, so ``ColumnarRelation`` picks up
    ``Relation``'s), the attributes it does *not* serialize must be
    reassigned by ``__setstate__`` (directly or through the helper
    methods it calls, ``super()`` included).  Any other method that reads
    a dropped-and-never-rebuilt attribute would crash (or silently see
    stale state) in a process-fleet worker right after unpickling.
    """

    code = "REP003"
    name = "pickle-safety"
    description = ("attributes dropped in __getstate__ and not rebuilt in "
                   "__setstate__ must not be read elsewhere")

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        for cls in _iter_classes(module):
            info = project.classes.get(cls.name)
            if info is None or info.node is not cls:
                continue  # ambiguous name; skip rather than guess
            yield from self._check_class(project, info)

    def _check_class(self, project: Project,
                     info: ClassInfo) -> Iterator[Finding]:
        chain = project.resolve_chain(info)
        getstate = _resolve(chain, "__getstate__", 0)
        if getstate is None:
            return
        _idx, _cls, getstate_fn = getstate
        kept = {attr for attr, _ in iter_self_reads(getstate_fn)}
        universe: Set[str] = set()
        for cls in chain:
            universe.update(s for s in cls.slots if s not in _NON_STATE_SLOTS)
        universe |= _transitive_rebinds(chain, "__init__")
        rebuilt = _transitive_rebinds(chain, "__setstate__")
        dropped = universe - kept - rebuilt
        if not dropped:
            return
        skip = {"__getstate__", "__setstate__", "__init__"}
        skip |= _transitive_methods(chain, "__setstate__")
        skip |= _transitive_methods(chain, "__init__")
        reported: Set[Tuple[str, str, int]] = set()
        for cls in chain:
            for name, fn in cls.methods.items():
                if name in skip:
                    continue
                for attr, node in iter_self_reads(fn):
                    if attr not in dropped:
                        continue
                    key = (cls.name, name, node.lineno)
                    if key in reported:
                        continue
                    reported.add(key)
                    yield Finding(
                        rule=self.code,
                        path=cls.module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"{info.name}: attribute '{attr}' is dropped by "
                            f"__getstate__ and never rebuilt by __setstate__, "
                            f"but {name}() reads it — crashes after unpickling"
                        ),
                    )


def _resolve(chain: Sequence[ClassInfo], method: str,
             start: int) -> Optional[Tuple[int, ClassInfo, ast.FunctionDef]]:
    """MRO-style lookup of ``method`` starting at ``chain[start]``."""
    for idx in range(start, len(chain)):
        fn = chain[idx].methods.get(method)
        if fn is not None:
            return idx, chain[idx], fn
    return None


def _transitive_closure(chain: Sequence[ClassInfo],
                        root: str) -> List[Tuple[int, ast.FunctionDef]]:
    """Methods reachable from ``root`` via ``self.*()``/``super().*()``."""
    start = _resolve(chain, root, 0)
    if start is None:
        return []
    out: List[Tuple[int, ast.FunctionDef]] = []
    seen: Set[Tuple[int, str]] = set()
    queue: List[Tuple[int, str]] = [(start[0], root)]
    while queue:
        idx, name = queue.pop()
        if (idx, name) in seen:
            continue
        seen.add((idx, name))
        resolved = _resolve(chain, name, idx)
        if resolved is None:
            continue
        at, _cls, fn = resolved
        out.append((at, fn))
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                # dynamic dispatch: resolve from the most-derived class
                queue.append((0, func.attr))
            elif (isinstance(func.value, ast.Call)
                    and isinstance(func.value.func, ast.Name)
                    and func.value.func.id == "super"):
                queue.append((at + 1, func.attr))
    return out


def _transitive_rebinds(chain: Sequence[ClassInfo], root: str) -> Set[str]:
    out: Set[str] = set()
    for _idx, fn in _transitive_closure(chain, root):
        out |= _rebinding_writes(fn)
    return out


def _transitive_methods(chain: Sequence[ClassInfo], root: str) -> Set[str]:
    return {fn.name for _idx, fn in _transitive_closure(chain, root)}


@register
class StatsEnvelopeRule(Rule):
    """REP004: every ``stats()`` speaks the versioned envelope schema.

    A ``stats()`` method that returns a dict literal may only use keys
    the ``STATS_SCHEMA_VERSION`` envelope declares
    (:data:`repro.serving.stats.REQUIRED_KEYS`); one that returns a
    ``stats_envelope(...)`` call may only pass the declared section
    kwargs.  Computed returns are skipped — the rule is deliberately
    conservative, catching the common drift (a layer inventing an ad-hoc
    top-level key the dashboards never see).
    """

    code = "REP004"
    name = "stats-envelope"
    description = ("stats() dict-literal keys / stats_envelope kwargs must "
                   "be declared envelope sections")

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.FunctionDef) and node.name == "stats":
                yield from self._check_stats(module, node)

    def _check_stats(self, module: ModuleInfo,
                     fn: ast.FunctionDef) -> Iterator[Finding]:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value = node.value
            if isinstance(value, ast.Call):
                func = value.func
                callee = func.id if isinstance(func, ast.Name) else (
                    func.attr if isinstance(func, ast.Attribute) else None)
                if callee != "stats_envelope":
                    continue
                for kw in value.keywords:
                    if kw.arg is not None and kw.arg not in ENVELOPE_SECTIONS:
                        yield self.finding(
                            module, kw.value,
                            f"stats() passes undeclared envelope section "
                            f"'{kw.arg}' to stats_envelope (declared: "
                            f"{', '.join(sorted(ENVELOPE_SECTIONS))})",
                        )
            elif isinstance(value, ast.Dict):
                for key in value.keys:
                    if (isinstance(key, ast.Constant)
                            and isinstance(key.value, str)
                            and key.value not in REQUIRED_KEYS):
                        yield self.finding(
                            module, key,
                            f"stats() returns undeclared envelope key "
                            f"'{key.value}' (schema v{STATS_SCHEMA_VERSION} "
                            f"keys: {', '.join(REQUIRED_KEYS)})",
                        )


@register
class BareAssertRule(Rule):
    """REP005: library invariants raise typed errors, not ``assert``.

    ``python -O`` strips assert statements, so a bare ``assert`` in
    ``src/`` silently disables the invariant in optimized deployments.
    Raise ``SchemaError`` / ``PlanningError`` / ``FleetError`` (or a
    plain ``ValueError``) instead.  Tests and benchmarks are exempt by
    scope — the linter only walks ``src/``.
    """

    code = "REP005"
    name = "bare-assert"
    description = "no bare assert statements in library code"

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    module, node,
                    "bare assert in library code — raise a typed error "
                    "instead (asserts vanish under python -O)",
                )
