"""AST-based project-invariant linter (rules REP001–REP005)."""

from repro.analysis.lint import rules as _rules  # noqa: F401  (registers rules)
from repro.analysis.lint.framework import (
    Finding,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)

__all__ = [
    "Finding",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
]
