"""Checker framework for the project-invariant linter.

The linter is a thin, dependency-free layer over :mod:`ast`:

* :class:`Rule` — one named check (``REP001`` …) over a parsed module,
  with read access to the whole :class:`Project` so rules can resolve
  cross-file inheritance (``ColumnarRelation`` inherits its
  ``__getstate__`` from ``Relation`` in another module).
* :class:`Finding` — one diagnostic, renderable as text or JSON.
* ``# repro: noqa`` / ``# repro: noqa[REP001,REP005]`` on the flagged
  line suppresses findings (all rules, or just the listed ones).

Rules register themselves with :func:`register`; :func:`lint_paths` and
:func:`lint_source` are the entry points the CLI and the test suite use.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Finding",
    "Rule",
    "Project",
    "ModuleInfo",
    "ClassInfo",
    "register",
    "all_rules",
    "lint_paths",
    "lint_source",
    "render_text",
    "render_json",
]

_NOQA = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9_,\s]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: ``path:line:col: CODE message``."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class ClassInfo:
    """Cross-file class model: bases by name, methods, slots."""

    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    base_names: List[str]
    methods: Dict[str, ast.FunctionDef]
    slots: List[str]


@dataclass
class ModuleInfo:
    """One parsed source file plus its suppression map."""

    path: str
    tree: ast.Module
    #: line number -> set of suppressed rule codes; empty set = all rules
    noqa: Dict[int, Set[str]]

    def suppressed(self, line: int, rule: str) -> bool:
        codes = self.noqa.get(line)
        if codes is None:
            return False
        return not codes or rule in codes


@dataclass
class Project:
    """All modules under lint, with a project-wide class table."""

    modules: List[ModuleInfo]
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: class names defined more than once — inheritance resolution for
    #: these is skipped rather than guessed
    ambiguous: Set[str] = field(default_factory=set)

    def resolve_chain(self, cls: ClassInfo) -> List[ClassInfo]:
        """``cls`` followed by its single-inheritance ancestor chain.

        Multiple inheritance walks the first resolvable base only (no
        project class in the tree uses diamond inheritance); unknown or
        ambiguous base names end the chain.
        """
        chain = [cls]
        seen = {cls.name}
        cur = cls
        while True:
            nxt: Optional[ClassInfo] = None
            for base in cur.base_names:
                if base in self.ambiguous or base in seen:
                    continue
                cand = self.classes.get(base)
                if cand is not None:
                    nxt = cand
                    break
            if nxt is None:
                return chain
            chain.append(nxt)
            seen.add(nxt.name)
            cur = nxt


class Rule:
    """Base class for one lint rule; subclasses set ``code``/``name``."""

    code: str = ""
    name: str = ""
    description: str = ""

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.code,
            path=module.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    _REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by code."""
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def _parse_noqa(source: str) -> Dict[int, Set[str]]:
    noqa: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA.search(line)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            noqa[lineno] = set()
        else:
            noqa[lineno] = {r.strip() for r in rules.split(",") if r.strip()}
    return noqa


def _class_slots(node: ast.ClassDef) -> List[str]:
    slots: List[str] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                value = stmt.value
                elts: Sequence[ast.expr]
                if isinstance(value, (ast.Tuple, ast.List)):
                    elts = value.elts
                elif isinstance(value, ast.Constant) and isinstance(value.value, str):
                    elts = [value]
                else:
                    continue
                for elt in elts:
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                        slots.append(elt.value)
    return slots


def _index_module(module: ModuleInfo, project: Project) -> None:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        base_names: List[str] = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                base_names.append(base.id)
            elif isinstance(base, ast.Attribute):
                base_names.append(base.attr)
        methods = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, ast.FunctionDef)
        }
        info = ClassInfo(
            name=node.name,
            module=module,
            node=node,
            base_names=base_names,
            methods=methods,
            slots=_class_slots(node),
        )
        if node.name in project.classes:
            project.ambiguous.add(node.name)
        else:
            project.classes[node.name] = info


def _load_module(path: Path, display: str) -> ModuleInfo:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=display)
    return ModuleInfo(path=display, tree=tree, noqa=_parse_noqa(source))


def _display_path(path: Path) -> str:
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def load_project(paths: Sequence[Path]) -> Project:
    """Parse every ``*.py`` under ``paths`` into one :class:`Project`."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                p for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        else:
            files.append(path)
    project = Project(modules=[])
    for file in files:
        module = _load_module(file, _display_path(file))
        project.modules.append(module)
    for module in project.modules:
        _index_module(module, project)
    return project


def lint_project(project: Project, rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Run ``rules`` (default: all registered) over every module."""
    active = list(rules) if rules is not None else all_rules()
    by_path = {module.path: module for module in project.modules}
    findings: Set[Finding] = set()
    for module in project.modules:
        for rule in active:
            for finding in rule.check(module, project):
                # a rule may report into another module (cross-file
                # inheritance); suppression follows the reported line
                home = by_path.get(finding.path, module)
                if not home.suppressed(finding.line, finding.rule):
                    findings.add(finding)
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def lint_paths(paths: Sequence[Path], rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Lint files/directories; the main entry point for the CLI."""
    return lint_project(load_project(paths), rules=rules)


def lint_source(source: str, path: str = "<string>",
                rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Lint one in-memory module (fixture tests use this)."""
    tree = ast.parse(source, filename=path)
    module = ModuleInfo(path=path, tree=tree, noqa=_parse_noqa(source))
    project = Project(modules=[module])
    _index_module(module, project)
    return lint_project(project, rules=rules)


def render_text(findings: Sequence[Finding]) -> str:
    if not findings:
        return "no findings"
    lines = [f.render() for f in findings]
    lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    return json.dumps(
        {"findings": [f.to_json() for f in findings], "count": len(findings)},
        indent=2,
    )


def iter_self_reads(func: ast.FunctionDef) -> Iterator[Tuple[str, ast.Attribute]]:
    """Yield ``(attr, node)`` for every ``self.attr`` read in ``func``."""
    for node in ast.walk(func):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            yield node.attr, node


def iter_self_writes(func: ast.FunctionDef) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(attr, stmt)`` for every mutation of ``self.attr``.

    Covers ``self.x = …``, ``self.x += …``, ``self.x: T = …`` and
    ``del self.x``; subscript stores (``self.d[k] = v``) mutate the
    *container*, not the attribute binding, and are not included.
    """

    def _is_self_attr(target: ast.expr) -> Optional[str]:
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            return target.attr
        return None

    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                targets = target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
                for t in targets:
                    attr = _is_self_attr(t)
                    if attr is not None:
                        yield attr, node
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(node, ast.AnnAssign) and node.value is None:
                continue
            attr = _is_self_attr(node.target)
            if attr is not None:
                yield attr, node
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = _is_self_attr(target)
                if attr is not None:
                    yield attr, node
